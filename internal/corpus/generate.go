package corpus

import (
	"fmt"
	"strings"

	"gator/internal/alite"
	"gator/internal/layout"
)

// App is one generated benchmark application.
type App struct {
	Name    string
	Spec    Spec
	Source  string // single ALite compilation unit
	Files   []*alite.File
	Layouts map[string]*layout.Layout
}

// FreshFiles re-parses the source, yielding an independent AST.
func (a *App) FreshFiles() []*alite.File {
	return []*alite.File{alite.MustParse(a.Name+".alite", a.Source)}
}

// FreshLayouts deep-copies the layouts so a caller can link them (linking
// splices include nodes in place).
func (a *App) FreshLayouts() map[string]*layout.Layout {
	out := make(map[string]*layout.Layout, len(a.Layouts))
	for name, l := range a.Layouts {
		out[name] = layout.Clone(l)
	}
	return out
}

// LayoutXML renders the layouts back to XML source, keyed by layout name —
// the input form the public gator.Load/AnalyzeBatch API consumes.
func (a *App) LayoutXML() map[string]string {
	out := make(map[string]string, len(a.Layouts))
	for name, l := range a.Layouts {
		out[name] = layout.Render(l)
	}
	return out
}

// BatchSources returns the app's ALite sources keyed by file name, the
// companion of LayoutXML for the public batch API.
func (a *App) BatchSources() map[string]string {
	return map[string]string{a.Name + ".alite": a.Source}
}

// lcg is a tiny deterministic pseudo-random sequence for cosmetic choices.
type lcg uint64

func newLCG(name string) *lcg {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	l := lcg(h | 1)
	return &l
}

func (l *lcg) next(n int) int {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int((uint64(*l) >> 33) % uint64(n))
}

var widgetClasses = []string{"TextView", "Button", "ImageView", "EditText", "CheckBox", "ProgressBar", "ImageButton"}

// listenerEvents cycles the generated listener kinds.
var listenerEvents = []struct {
	iface, setter, handler string
}{
	{"OnClickListener", "setOnClickListener", "onClick"},
	{"OnLongClickListener", "setOnLongClickListener", "onLongClick"},
	{"OnFocusChangeListener", "setOnFocusChangeListener", "onFocusChange"},
}

// genPlan is the derived construction plan for one spec.
type genPlan struct {
	spec   Spec
	nAct   int
	panels int
	// actIDs[i] / panelIDs[k] are the widget id names per layout
	// (activity roots carry an extra "<act>_root" id).
	actIDs   [][]string
	panelIDs [][]string
	// extraNodes[l] are anonymous widgets added to layout l (activities
	// first, then panels) to reach the inflated-view budget.
	extraNodes []int
	// allocPerAct[i] is the number of programmatic views built in act i.
	allocPerAct []int
	// listenersPerAct[i] is the number of listener classes owned by act i.
	listenersPerAct []int
	// probes is the number of fanout helper classes; routeSimple the number
	// of widget vars routed to each; routeCollector whether each activity
	// routes a findFocus collector to every probe.
	probes         int
	routeSimple    int
	routeCollector bool
	fillers        int
	fillerMethods  int
}

func plan(s Spec) genPlan {
	p := genPlan{spec: s}
	p.nAct = (s.Layouts*2 + 2) / 3
	if p.nAct < 1 {
		p.nAct = 1
	}
	if p.nAct > s.Layouts {
		p.nAct = s.Layouts
	}
	if p.nAct > s.ViewIDs {
		p.nAct = s.ViewIDs
	}
	if p.nAct < 1 {
		p.nAct = 1
	}
	p.panels = s.Layouts - p.nAct

	// View id budget: one root id per activity, one probe sink when fanout
	// is needed, the rest spread over all layouts round-robin.
	needProbe := s.TargetReceivers > 1.02
	widgetIDs := s.ViewIDs - p.nAct
	if needProbe {
		widgetIDs--
	}
	if widgetIDs < 0 {
		widgetIDs = 0
	}
	p.actIDs = make([][]string, p.nAct)
	p.panelIDs = make([][]string, p.panels)
	for j := 0; j < widgetIDs; j++ {
		l := j % s.Layouts
		if l < p.nAct {
			p.actIDs[l] = append(p.actIDs[l], fmt.Sprintf("a%d_w%d", l, len(p.actIDs[l])))
		} else {
			k := l - p.nAct
			p.panelIDs[k] = append(p.panelIDs[k], fmt.Sprintf("p%d_w%d", k, len(p.panelIDs[k])))
		}
	}

	// Inflated node budget.
	base := 0
	for i := 0; i < p.nAct; i++ {
		base += 1 + len(p.actIDs[i])
	}
	for k := 0; k < p.panels; k++ {
		base += 1 + len(p.panelIDs[k])
	}
	extra := s.InflatedViews - base
	p.extraNodes = make([]int, s.Layouts)
	for l := 0; extra > 0; l = (l + 1) % s.Layouts {
		p.extraNodes[l]++
		extra--
	}

	// Programmatic views and listeners round-robin across activities.
	p.allocPerAct = make([]int, p.nAct)
	for j := 0; j < s.AllocViews; j++ {
		p.allocPerAct[j%p.nAct]++
	}
	p.listenersPerAct = make([]int, p.nAct)
	for j := 0; j < s.Listeners; j++ {
		p.listenersPerAct[j%p.nAct]++
	}

	p.calibrateFanout()
	return p
}

// calibrateFanout chooses the shared-helper configuration that brings the
// average view-receiver count close to the Table 2 target. The helper
// pattern is the paper's XBMC effect: a context-insensitive analysis merges
// all call sites of a shared lookup helper, so its receiver set holds every
// view routed through it.
func (p *genPlan) calibrateFanout() {
	s := p.spec
	// Single-receiver view ops planned elsewhere.
	r1 := 0
	for _, ids := range p.panelIDs {
		r1 += len(ids) // FindView1 per panel widget
	}
	setIDOps := 0
	if p.nAct > 1 {
		setIDOps = s.AllocViews
	}
	r1 += setIDOps + s.Listeners
	if s.AddViews {
		r1 += p.panels + s.AllocViews // addView(panel root), addView(prog view)
	}
	simple := p.nAct // the per-activity root vars are routable
	for _, ids := range p.actIDs {
		simple += len(ids)
	}
	collK := s.InflatedViews
	if s.AddViews {
		collK += s.AllocViews
	}

	target := s.TargetReceivers
	if target <= 1.02 || r1 == 0 {
		return
	}
	bestErr := target - 1.0 // error of doing nothing
	for h := 1; h <= 12; h++ {
		// Collector routing: every activity routes its whole subtree.
		avgC := (float64(r1+p.nAct) + float64(h*collK)) / float64(r1+p.nAct+h)
		if err := abs(avgC - target); err < bestErr {
			bestErr, p.probes, p.routeSimple, p.routeCollector = err, h, 0, true
		}
		// Simple routing: s widget vars to each probe.
		want := target*float64(r1+h) - float64(r1)
		sBest := int(want/float64(h) + 0.5)
		if sBest < 0 {
			sBest = 0
		}
		if sBest > simple {
			sBest = simple
		}
		avgS := (float64(r1) + float64(h*sBest)) / float64(r1+h)
		if err := abs(avgS - target); err < bestErr {
			bestErr, p.probes, p.routeSimple, p.routeCollector = err, h, sBest, false
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Generate produces the application for a spec.
func Generate(s Spec) *App {
	p := plan(s)
	rng := newLCG(s.Name)

	layouts := map[string]*layout.Layout{}
	for i := 0; i < p.nAct; i++ {
		layouts[fmt.Sprintf("a%d", i)] = buildLayout(rng, fmt.Sprintf("a%d", i),
			fmt.Sprintf("a%d_root", i), p.actIDs[i], p.extraNodes[i])
	}
	for k := 0; k < p.panels; k++ {
		layouts[fmt.Sprintf("p%d", k)] = buildLayout(rng, fmt.Sprintf("p%d", k),
			"", p.panelIDs[k], p.extraNodes[p.nAct+k])
	}

	src, methodCount, classCount := genSource(p, rng)

	// Filler classes and methods to reach the Table 1 totals.
	p.fillers = s.Classes - classCount
	if p.fillers < 0 {
		p.fillers = 0
	}
	p.fillerMethods = s.Methods - methodCount
	if p.fillerMethods < 0 {
		p.fillerMethods = 0
	}
	var b strings.Builder
	b.WriteString(src)
	writeFillers(&b, p.fillers, p.fillerMethods, rng)

	return &App{
		Name:    s.Name,
		Spec:    s,
		Source:  b.String(),
		Files:   []*alite.File{alite.MustParse(s.Name+".alite", b.String())},
		Layouts: layouts,
	}
}

// buildLayout constructs one layout tree: a LinearLayout root (optionally
// id'd), identified widgets, and anonymous extras. Every sixth widget opens
// a nested container for depth.
func buildLayout(rng *lcg, name, rootID string, ids []string, extras int) *layout.Layout {
	root := &layout.Node{Class: "LinearLayout", ID: rootID}
	parent := root
	count := 0
	addWidget := func(id string) {
		if count > 0 && count%6 == 0 {
			group := &layout.Node{Class: "LinearLayout"}
			root.Children = append(root.Children, group)
			parent = group
			count++
		}
		w := &layout.Node{Class: widgetClasses[rng.next(len(widgetClasses))], ID: id}
		parent.Children = append(parent.Children, w)
		count++
	}
	for _, id := range ids {
		addWidget(id)
	}
	// Anonymous extras; the interleaved containers consume budget too.
	target := count + extras
	for count < target {
		addWidget("")
	}
	return &layout.Layout{Name: name, Root: root}
}

// genSource emits activities, listeners, and probe helpers; returns the
// source text plus the class and method tallies so fillers can be sized.
func genSource(p genPlan, rng *lcg) (string, int, int) {
	s := p.spec
	var b strings.Builder
	methods, classes := 0, 0

	// Probe helper classes.
	for h := 0; h < p.probes; h++ {
		fmt.Fprintf(&b, "class Probe%d {\n", h)
		fmt.Fprintf(&b, "\tView probe(View v, int a) {\n\t\tView r = v.findViewById(a);\n\t\treturn r;\n\t}\n}\n")
		classes++
		methods++
	}

	// Listener classes.
	lstIndex := 0
	for i := 0; i < p.nAct; i++ {
		for j := 0; j < p.listenersPerAct[i]; j++ {
			ev := listenerEvents[lstIndex%len(listenerEvents)]
			fmt.Fprintf(&b, "class Lst%d implements %s {\n", lstIndex, ev.iface)
			fmt.Fprintf(&b, "\tint used;\n")
			fmt.Fprintf(&b, "\tvoid %s(View v) {\n\t\tthis.used = 1;\n\t}\n}\n", ev.handler)
			classes++
			methods++
			lstIndex++
		}
	}

	// Simple-routing assignment: the first routeSimple widget vars across
	// activities (round-robin by activity, then widget index).
	routeBudget := p.routeSimple

	lstIndex = 0
	panelsPerAct := make([][]int, p.nAct)
	for k := 0; k < p.panels; k++ {
		panelsPerAct[k%p.nAct] = append(panelsPerAct[k%p.nAct], k)
	}
	for i := 0; i < p.nAct; i++ {
		fmt.Fprintf(&b, "class Act%d extends Activity {\n", i)
		fmt.Fprintf(&b, "\tView root;\n")

		// onCreate.
		fmt.Fprintf(&b, "\tvoid onCreate() {\n")
		fmt.Fprintf(&b, "\t\tthis.setContentView(R.layout.a%d);\n", i)
		fmt.Fprintf(&b, "\t\tView r0 = this.findViewById(R.id.a%d_root);\n", i)
		fmt.Fprintf(&b, "\t\tthis.root = r0;\n")
		var widgetVars []string
		for j := range p.actIDs[i] {
			fmt.Fprintf(&b, "\t\tView v%d = this.findViewById(R.id.%s);\n", j, p.actIDs[i][j])
			widgetVars = append(widgetVars, fmt.Sprintf("v%d", j))
		}
		// Listener registrations on the found widgets (or the root).
		for j := 0; j < p.listenersPerAct[i]; j++ {
			ev := listenerEvents[lstIndex%len(listenerEvents)]
			target := "r0"
			if len(widgetVars) > 0 {
				target = widgetVars[j%len(widgetVars)]
			}
			fmt.Fprintf(&b, "\t\tLst%d lk%d = new Lst%d();\n", lstIndex, j, lstIndex)
			fmt.Fprintf(&b, "\t\t%s.%s(lk%d);\n", target, ev.setter, j)
			lstIndex++
		}
		// Fanout routing.
		if p.probes > 0 {
			for h := 0; h < p.probes; h++ {
				fmt.Fprintf(&b, "\t\tProbe%d pb%d = new Probe%d();\n", h, h, h)
			}
			if p.routeCollector {
				fmt.Fprintf(&b, "\t\tView all = r0.findFocus();\n")
				for h := 0; h < p.probes; h++ {
					fmt.Fprintf(&b, "\t\tpb%d.probe(all, R.id.probe_sink);\n", h)
				}
			} else {
				routable := append([]string{"r0"}, widgetVars...)
				for _, v := range routable {
					if routeBudget <= 0 {
						break
					}
					routeBudget--
					for h := 0; h < p.probes; h++ {
						fmt.Fprintf(&b, "\t\tpb%d.probe(%s, R.id.probe_sink);\n", h, v)
					}
				}
			}
		}
		if p.allocPerAct[i] > 0 {
			fmt.Fprintf(&b, "\t\tthis.buildViews();\n")
		}
		for _, k := range panelsPerAct[i] {
			fmt.Fprintf(&b, "\t\tthis.panel%d();\n", k)
		}
		fmt.Fprintf(&b, "\t}\n")
		methods++

		// Panel methods.
		for _, k := range panelsPerAct[i] {
			fmt.Fprintf(&b, "\tvoid panel%d() {\n", k)
			fmt.Fprintf(&b, "\t\tLayoutInflater nf = this.getLayoutInflater();\n")
			fmt.Fprintf(&b, "\t\tView p = nf.inflate(R.layout.p%d);\n", k)
			for j, id := range p.panelIDs[k] {
				fmt.Fprintf(&b, "\t\tView q%d = p.findViewById(R.id.%s);\n", j, id)
			}
			if s.AddViews {
				fmt.Fprintf(&b, "\t\tViewGroup rg = (ViewGroup) this.root;\n")
				fmt.Fprintf(&b, "\t\trg.addView(p);\n")
			}
			fmt.Fprintf(&b, "\t}\n")
			methods++
		}

		// Programmatic view construction.
		if p.allocPerAct[i] > 0 {
			fmt.Fprintf(&b, "\tvoid buildViews() {\n")
			if s.AddViews {
				fmt.Fprintf(&b, "\t\tViewGroup rg = (ViewGroup) this.root;\n")
			}
			for j := 0; j < p.allocPerAct[i]; j++ {
				cls := widgetClasses[rng.next(len(widgetClasses))]
				fmt.Fprintf(&b, "\t\t%s b%d = new %s();\n", cls, j, cls)
				if p.nAct > 1 {
					fmt.Fprintf(&b, "\t\tb%d.setId(R.id.a%d_root);\n", j, (i+1)%p.nAct)
				}
				if s.AddViews {
					fmt.Fprintf(&b, "\t\trg.addView(b%d);\n", j)
				}
			}
			fmt.Fprintf(&b, "\t}\n")
			methods++
		}
		fmt.Fprintf(&b, "}\n")
		classes++
	}
	return b.String(), methods, classes
}

// writeFillers emits plain data/logic classes to reach the class and method
// totals of Table 1.
func writeFillers(b *strings.Builder, classes, methods int, rng *lcg) {
	for i := 0; i < classes; i++ {
		per := 0
		if classes-i > 0 {
			per = methods / (classes - i)
		}
		if per > 40 {
			per = 40
		}
		methods -= per
		fmt.Fprintf(b, "class D%d {\n\tint state;\n", i)
		for j := 0; j < per; j++ {
			switch rng.next(3) {
			case 0:
				fmt.Fprintf(b, "\tint f%d(int x) {\n\t\treturn x;\n\t}\n", j)
			case 1:
				fmt.Fprintf(b, "\tvoid g%d(int x) {\n\t\tthis.state = x;\n\t}\n", j)
			default:
				fmt.Fprintf(b, "\tint h%d() {\n\t\tint y = this.state;\n\t\treturn y;\n\t}\n", j)
			}
		}
		fmt.Fprintf(b, "}\n")
	}
}

// GenerateAll produces the full 20-application corpus.
func GenerateAll() []*App {
	specs := Table1Specs()
	apps := make([]*App, len(specs))
	for i, s := range specs {
		apps[i] = Generate(s)
	}
	return apps
}

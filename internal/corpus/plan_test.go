package corpus

import (
	"strings"
	"testing"

	"gator/internal/alite"
)

func TestPlanRespectsBudgets(t *testing.T) {
	for _, s := range Table1Specs() {
		p := plan(s)
		if p.nAct < 1 || p.nAct > s.Layouts || p.nAct > s.ViewIDs {
			t.Errorf("%s: nAct = %d (L=%d V=%d)", s.Name, p.nAct, s.Layouts, s.ViewIDs)
		}
		if p.nAct+p.panels != s.Layouts {
			t.Errorf("%s: layouts = %d + %d != %d", s.Name, p.nAct, p.panels, s.Layouts)
		}
		// View id budget: roots + widgets (+ probe sink) == V.
		widgets := 0
		for _, ids := range p.actIDs {
			widgets += len(ids)
		}
		for _, ids := range p.panelIDs {
			widgets += len(ids)
		}
		sink := 0
		if s.TargetReceivers > 1.02 {
			sink = 1
		}
		if got := p.nAct + widgets + sink; got != s.ViewIDs {
			t.Errorf("%s: id budget %d != %d", s.Name, got, s.ViewIDs)
		}
		// Allocation and listener distribution sums match.
		allocs, lsts := 0, 0
		for i := range p.allocPerAct {
			allocs += p.allocPerAct[i]
			lsts += p.listenersPerAct[i]
		}
		if allocs != s.AllocViews || lsts != s.Listeners {
			t.Errorf("%s: alloc %d/%d, listeners %d/%d", s.Name, allocs, s.AllocViews, lsts, s.Listeners)
		}
	}
}

func TestFanoutCalibrationShape(t *testing.T) {
	// Apps with a target near 1.0 get no probes; the outlier gets several.
	noFan := plan(mustSpec(t, "ConnectBot"))
	if noFan.probes != 0 {
		t.Errorf("ConnectBot probes = %d, want 0", noFan.probes)
	}
	xbmc := plan(mustSpec(t, "XBMC"))
	if xbmc.probes == 0 || !xbmc.routeCollector {
		t.Errorf("XBMC plan = %+v, want collector fanout", xbmc.probes)
	}
	astrid := plan(mustSpec(t, "Astrid"))
	if astrid.probes == 0 {
		t.Error("Astrid plan has no probes")
	}
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	s, ok := SpecByName(name)
	if !ok {
		t.Fatalf("no spec %s", name)
	}
	return s
}

func TestRandomAppParsesAndPrints(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		sources, layouts := RandomApp(seed)
		if len(sources) == 0 || len(layouts) == 0 {
			t.Fatalf("seed %d: empty app", seed)
		}
		for name, src := range sources {
			f, err := alite.Parse(name, src)
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			// Print∘Parse is a fixed point on generated code too.
			printed := alite.Print(f)
			f2, err := alite.Parse(name, printed)
			if err != nil {
				t.Fatalf("seed %d: reparse: %v", seed, err)
			}
			if alite.Print(f2) != printed {
				t.Errorf("seed %d: print not idempotent", seed)
			}
		}
	}
}

func TestRandomAppDeterministic(t *testing.T) {
	a1, l1 := RandomApp(42)
	a2, l2 := RandomApp(42)
	if a1["random.alite"] != a2["random.alite"] {
		t.Error("sources differ for same seed")
	}
	for name := range l1 {
		if l1[name] != l2[name] {
			t.Errorf("layout %s differs", name)
		}
	}
	b1, _ := RandomApp(43)
	if a1["random.alite"] == b1["random.alite"] {
		t.Error("different seeds gave identical sources")
	}
}

func TestGeneratedSourceMentionsAllOps(t *testing.T) {
	// Across the corpus, every operation family appears somewhere.
	var all strings.Builder
	for _, app := range GenerateAll() {
		all.WriteString(app.Source)
	}
	src := all.String()
	for _, want := range []string{
		"setContentView(", "findViewById(", "addView(", "setId(",
		"setOnClickListener(", "setOnLongClickListener(", "inflate(",
		"findFocus()", "getLayoutInflater()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("corpus never uses %q", want)
		}
	}
}

package corpus

import (
	"testing"

	"gator/internal/ir"
)

func TestFigure1Builds(t *testing.T) {
	if _, err := ir.Build(Figure1Files(), Figure1Layouts()); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Build(Figure1ClosedFiles(), Figure1Layouts()); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAllBuild(t *testing.T) {
	for _, app := range GenerateAll() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			p, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
			if err != nil {
				t.Fatalf("build failed: %v", err)
			}
			// Class and method totals match the Table 1 spec exactly.
			classes, methods := 0, 0
			for _, c := range p.AppClasses() {
				classes++
				methods += len(c.Methods)
			}
			if classes != app.Spec.Classes {
				t.Errorf("classes = %d, want %d", classes, app.Spec.Classes)
			}
			if methods != app.Spec.Methods {
				t.Errorf("methods = %d, want %d", methods, app.Spec.Methods)
			}
			// Layout count matches L.
			if p.R.NumLayouts() != app.Spec.Layouts {
				t.Errorf("layouts = %d, want %d", p.R.NumLayouts(), app.Spec.Layouts)
			}
			// View id count is within one of V (the probe sink is reserved
			// but only emitted when fanout calibration selects probes).
			v := p.R.NumViewIDs()
			if v != app.Spec.ViewIDs && v != app.Spec.ViewIDs-1 {
				t.Errorf("view ids = %d, want %d (or one less)", v, app.Spec.ViewIDs)
			}
			// Inflated node budget: at least the spec, within 25% above
			// (nesting containers may add a few).
			nodes := 0
			for _, l := range p.Layouts {
				nodes += l.Root.Count()
			}
			if nodes < app.Spec.InflatedViews || nodes > app.Spec.InflatedViews*5/4+4 {
				t.Errorf("layout nodes = %d, want ≈%d", nodes, app.Spec.InflatedViews)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Table1Specs()[0])
	b := Generate(Table1Specs()[0])
	if a.Source != b.Source {
		t.Error("generation is not deterministic")
	}
}

func TestSpecByName(t *testing.T) {
	s, ok := SpecByName("XBMC")
	if !ok || s.TargetReceivers != 8.81 {
		t.Errorf("SpecByName(XBMC) = %+v, %v", s, ok)
	}
	if _, ok := SpecByName("nope"); ok {
		t.Error("found nonexistent spec")
	}
	if len(Table1Specs()) != 20 {
		t.Errorf("corpus has %d apps, want 20", len(Table1Specs()))
	}
}

func TestCorpusShapeInvariants(t *testing.T) {
	specs := Table1Specs()
	noAdd, noAlloc := 0, 0
	for _, s := range specs {
		if !s.AddViews {
			noAdd++
		}
		if s.AllocViews == 0 {
			noAlloc++
		}
	}
	if noAdd != 4 {
		t.Errorf("apps without AddView = %d, want 4 (paper: all but four)", noAdd)
	}
	if noAlloc != 5 {
		t.Errorf("apps without allocated views = %d, want 5 (paper: 15 of 20 have them)", noAlloc)
	}
}

package corpus

import (
	"strings"
	"testing"

	"gator/internal/analysis"
	"gator/internal/core"
	"gator/internal/ir"
)

// runLifecycleChecks analyzes one scenario app and returns the lifecycle-*
// finding counts keyed by checker ID.
func runLifecycleChecks(t testing.TB, app *App) map[string]int {
	t.Helper()
	p, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
	if err != nil {
		t.Fatalf("%s does not build: %v", app.Name, err)
	}
	res := core.Analyze(p, core.Options{})
	rep, err := analysis.Run(app.Name, res, analysis.Options{Checks: []string{"lifecycle-*"}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range rep.Findings {
		counts[f.Check]++
	}
	return counts
}

// TestScenarioPackRecall is the generator/checker contract the BENCH_10
// recall benchmark rests on: every seeded bug in the pack is located by its
// checker, and every clean twin is silent across all lifecycle checkers.
func TestScenarioPackRecall(t *testing.T) {
	specs := ScenarioPack(24)
	if len(specs) != 24 {
		t.Fatalf("pack size = %d", len(specs))
	}
	seenBug := map[OrderingBug]bool{}
	for _, spec := range specs {
		seenBug[spec.Bug] = true
		app := GenerateScenario(spec)
		counts := runLifecycleChecks(t, app)
		if counts[spec.Bug.CheckerID()] == 0 {
			t.Errorf("%s: checker %s missed the seeded bug\n%s",
				app.Name, spec.Bug.CheckerID(), app.Source)
		}
		clean := GenerateScenario(spec.CleanTwin())
		if cleanCounts := runLifecycleChecks(t, clean); len(cleanCounts) != 0 {
			t.Errorf("%s: clean twin has findings %v\n%s",
				clean.Name, cleanCounts, clean.Source)
		}
	}
	for b := OrderingBug(0); b < NumOrderingBugs; b++ {
		if !seenBug[b] {
			t.Errorf("pack of 24 never exercises bug %s", b)
		}
	}
}

func TestScenarioShapeParameters(t *testing.T) {
	deep := GenerateScenario(ScenarioSpec{Bug: BugUseAfterDestroy, Depth: 3, Branch: true, Seed: 5})
	if !strings.Contains(deep.Source, "step2") || strings.Contains(deep.Source, "step3") {
		t.Errorf("depth 3 should emit helpers step0..step2:\n%s", deep.Source)
	}
	if !strings.Contains(deep.Source, "if (*)") {
		t.Errorf("branch scenario lacks the nondet branch:\n%s", deep.Source)
	}
	flat := GenerateScenario(ScenarioSpec{Bug: BugListenerLeakOnPause})
	if strings.Contains(flat.Source, "step0") {
		t.Errorf("depth 0 should inline the operation:\n%s", flat.Source)
	}
	a := GenerateScenario(ScenarioSpec{Bug: BugDialogMisuse, Seed: 1})
	bApp := GenerateScenario(ScenarioSpec{Bug: BugDialogMisuse, Seed: 1})
	if a.Source != bApp.Source || a.Name != bApp.Name {
		t.Error("generation is not deterministic")
	}
}

// FuzzOrderingScenario: for arbitrary spec parameters the generated app
// must parse and build, the seeded bug must be located by its checker, and
// the clean twin must stay silent. Crashers found nightly are promoted into
// testdata corpora by the fuzz workflow.
func FuzzOrderingScenario(f *testing.F) {
	f.Add(uint8(0), uint8(0), false, 0)
	f.Add(uint8(1), uint8(2), true, 7)
	f.Add(uint8(2), uint8(4), false, 13)
	f.Fuzz(func(t *testing.T, bug, depth uint8, branch bool, seed int) {
		spec := ScenarioSpec{
			Bug:    OrderingBug(int(bug) % int(NumOrderingBugs)),
			Depth:  int(depth) % 6,
			Branch: branch,
			Seed:   seed,
		}
		app := GenerateScenario(spec)
		counts := runLifecycleChecks(t, app)
		if counts[spec.Bug.CheckerID()] == 0 {
			t.Fatalf("%s: checker %s missed the seeded bug\n%s",
				app.Name, spec.Bug.CheckerID(), app.Source)
		}
		clean := GenerateScenario(spec.CleanTwin())
		if cleanCounts := runLifecycleChecks(t, clean); len(cleanCounts) != 0 {
			t.Fatalf("%s: clean twin has findings %v\n%s",
				clean.Name, cleanCounts, clean.Source)
		}
	})
}

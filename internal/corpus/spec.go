package corpus

// Spec describes the feature profile of one benchmark application from
// Table 1 of the paper. Classes, Methods, Layouts (L), and ViewIDs (V) are
// taken from the paper's table; the remaining columns of the published
// table are partially illegible in the available copy, so InflatedViews,
// AllocViews, and Listeners are reconstructed to preserve the reported
// shape (XML layouts dominate; 15 of 20 apps allocate views explicitly;
// 4 of 20 have no add-child operations). TargetReceivers is the "receivers"
// column of Table 2 and drives the context-insensitivity profile of the
// generated code (XBMC is the outlier).
type Spec struct {
	Name    string
	Classes int
	Methods int

	Layouts int // L: number of layout files
	ViewIDs int // V: number of distinct view id names

	InflatedViews int // total view nodes across all layouts
	AllocViews    int // programmatically created views (0 for five apps)
	Listeners     int // listener classes/allocations

	// AddViews is false for the four applications without add-child
	// operations (Table 2 prints "-" for their parameters column).
	AddViews bool

	// TargetReceivers is the Table 2 "receivers" average the generated
	// application should roughly reproduce.
	TargetReceivers float64
}

// Table1Specs returns the 20 applications of the paper's evaluation.
func Table1Specs() []Spec {
	return []Spec{
		{Name: "APV", Classes: 68, Methods: 415, Layouts: 3, ViewIDs: 12, InflatedViews: 16, AllocViews: 2, Listeners: 6, AddViews: false, TargetReceivers: 1.00},
		{Name: "Astrid", Classes: 1228, Methods: 5782, Layouts: 95, ViewIDs: 230, InflatedViews: 460, AllocViews: 46, Listeners: 79, AddViews: true, TargetReceivers: 3.09},
		{Name: "BarcodeScanner", Classes: 126, Methods: 1224, Layouts: 9, ViewIDs: 33, InflatedViews: 61, AllocViews: 0, Listeners: 12, AddViews: true, TargetReceivers: 1.00},
		{Name: "Beem", Classes: 284, Methods: 1883, Layouts: 12, ViewIDs: 17, InflatedViews: 50, AllocViews: 0, Listeners: 26, AddViews: true, TargetReceivers: 1.04},
		{Name: "ConnectBot", Classes: 371, Methods: 2366, Layouts: 19, ViewIDs: 45, InflatedViews: 140, AllocViews: 7, Listeners: 26, AddViews: true, TargetReceivers: 1.00},
		{Name: "FBReader", Classes: 954, Methods: 5452, Layouts: 23, ViewIDs: 111, InflatedViews: 201, AllocViews: 9, Listeners: 43, AddViews: true, TargetReceivers: 1.54},
		{Name: "K9", Classes: 815, Methods: 5311, Layouts: 33, ViewIDs: 153, InflatedViews: 385, AllocViews: 8, Listeners: 54, AddViews: true, TargetReceivers: 1.15},
		{Name: "KeePassDroid", Classes: 465, Methods: 2784, Layouts: 19, ViewIDs: 70, InflatedViews: 213, AllocViews: 12, Listeners: 29, AddViews: true, TargetReceivers: 1.80},
		{Name: "Mileage", Classes: 221, Methods: 1223, Layouts: 64, ViewIDs: 155, InflatedViews: 355, AllocViews: 30, Listeners: 30, AddViews: true, TargetReceivers: 2.55},
		{Name: "MyTracks", Classes: 485, Methods: 2680, Layouts: 35, ViewIDs: 118, InflatedViews: 240, AllocViews: 4, Listeners: 30, AddViews: true, TargetReceivers: 1.12},
		{Name: "NPR", Classes: 249, Methods: 1359, Layouts: 15, ViewIDs: 88, InflatedViews: 274, AllocViews: 9, Listeners: 17, AddViews: true, TargetReceivers: 1.89},
		{Name: "NotePad", Classes: 89, Methods: 394, Layouts: 8, ViewIDs: 7, InflatedViews: 12, AllocViews: 0, Listeners: 9, AddViews: false, TargetReceivers: 1.00},
		{Name: "OpenManager", Classes: 60, Methods: 252, Layouts: 8, ViewIDs: 46, InflatedViews: 147, AllocViews: 0, Listeners: 20, AddViews: true, TargetReceivers: 1.31},
		{Name: "OpenSudoku", Classes: 140, Methods: 728, Layouts: 10, ViewIDs: 31, InflatedViews: 109, AllocViews: 6, Listeners: 16, AddViews: true, TargetReceivers: 1.40},
		{Name: "SipDroid", Classes: 351, Methods: 2683, Layouts: 12, ViewIDs: 36, InflatedViews: 75, AllocViews: 4, Listeners: 11, AddViews: true, TargetReceivers: 1.00},
		{Name: "SuperGenPass", Classes: 65, Methods: 268, Layouts: 3, ViewIDs: 9, InflatedViews: 37, AllocViews: 0, Listeners: 12, AddViews: false, TargetReceivers: 2.07},
		{Name: "TippyTipper", Classes: 57, Methods: 241, Layouts: 6, ViewIDs: 6, InflatedViews: 42, AllocViews: 3, Listeners: 22, AddViews: true, TargetReceivers: 1.15},
		{Name: "VLC", Classes: 242, Methods: 1374, Layouts: 10, ViewIDs: 35, InflatedViews: 91, AllocViews: 11, Listeners: 45, AddViews: true, TargetReceivers: 1.13},
		{Name: "VuDroid", Classes: 69, Methods: 385, Layouts: 5, ViewIDs: 3, InflatedViews: 11, AllocViews: 6, Listeners: 4, AddViews: false, TargetReceivers: 1.00},
		{Name: "XBMC", Classes: 568, Methods: 3012, Layouts: 24, ViewIDs: 28, InflatedViews: 151, AllocViews: 23, Listeners: 88, AddViews: true, TargetReceivers: 8.81},
	}
}

// SpecByName returns the spec for one benchmark app.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

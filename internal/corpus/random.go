package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomApp generates a small random-but-well-typed application for
// property-based testing: random layout trees (with deliberately reused view
// ids), activities whose onCreate performs a random mix of Android
// operations under random control flow, and random listener classes. The
// same seed always yields the same application.
//
// The generated programs compile (ir.Build succeeds); at run time they may
// trap (null find-view results, view-tree cycles), which the interpreter
// tolerates.
func RandomApp(seed int64) (sources, layouts map[string]string) {
	r := rand.New(rand.NewSource(seed))

	idPool := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	nLayouts := 1 + r.Intn(3)
	layouts = map[string]string{}
	for l := 0; l < nLayouts; l++ {
		layouts[fmt.Sprintf("lay%d", l)] = randomLayout(r, idPool)
	}

	nListeners := 1 + r.Intn(3)
	nActivities := 1 + r.Intn(2)
	nAdapters := r.Intn(2)

	var b strings.Builder
	for j := 0; j < nAdapters; j++ {
		fmt.Fprintf(&b, "class Ad%d implements Adapter {\n", j)
		fmt.Fprintf(&b, "\tView getView(int position) {\n")
		fmt.Fprintf(&b, "\t\tButton row = new Button();\n")
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "\t\trow.setId(R.id.%s);\n", pick(r, idPool))
		}
		fmt.Fprintf(&b, "\t\treturn row;\n\t}\n}\n")
	}
	for j := 0; j < nListeners; j++ {
		fmt.Fprintf(&b, "class Lst%d implements OnClickListener {\n", j)
		fmt.Fprintf(&b, "\tView last;\n")
		fmt.Fprintf(&b, "\tvoid onClick(View v) {\n")
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "\t\tthis.last = v;\n")
		case 1:
			fmt.Fprintf(&b, "\t\tView w = v.findViewById(R.id.%s);\n", pick(r, idPool))
		case 2:
			fmt.Fprintf(&b, "\t\tv.setId(R.id.%s);\n", pick(r, idPool))
		case 3:
			fmt.Fprintf(&b, "\t\tView w = v.findFocus();\n\t\tthis.last = w;\n")
		}
		fmt.Fprintf(&b, "\t}\n}\n")
	}

	for a := 0; a < nActivities; a++ {
		// Some activities are themselves click listeners (the paper's
		// "any object could be a listener" general case).
		selfListener := r.Intn(2) == 0
		if selfListener {
			fmt.Fprintf(&b, "class Act%d extends Activity implements OnClickListener {\n", a)
		} else {
			fmt.Fprintf(&b, "class Act%d extends Activity {\n", a)
		}
		fmt.Fprintf(&b, "\tView stash;\n")
		if selfListener {
			fmt.Fprintf(&b, "\tvoid onClick(View v) {\n\t\tthis.stash = v;\n\t}\n")
		}
		fmt.Fprintf(&b, "\tvoid onCreate() {\n")
		g := &randomBody{r: r, b: &b, idPool: idPool, nLayouts: nLayouts,
			nListeners: nListeners, nActivities: nActivities, nAdapters: nAdapters,
			selfListener: selfListener}
		g.emit(6+r.Intn(8), 2)
		fmt.Fprintf(&b, "\t}\n")
		// Options menu callbacks.
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "\tvoid onCreateOptionsMenu(Menu menu) {\n")
			for i, n := 0, 1+r.Intn(3); i < n; i++ {
				fmt.Fprintf(&b, "\t\tMenuItem mi%d = menu.add(R.id.%s);\n", i, pick(r, idPool))
			}
			fmt.Fprintf(&b, "\t}\n")
			fmt.Fprintf(&b, "\tvoid onOptionsItemSelected(MenuItem item) {\n\t}\n")
		}
		// Declarative android:onClick handlers (layouts reference
		// handler0..handler3; defining a random subset exercises both the
		// bound and unbound cases).
		for h := 0; h < 4; h++ {
			if r.Intn(2) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\tvoid handler%d(View v) {\n", h)
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "\t\tthis.stash = v;\n")
			case 1:
				fmt.Fprintf(&b, "\t\tv.setId(R.id.%s);\n", pick(r, idPool))
			case 2:
				fmt.Fprintf(&b, "\t\tIntent i = new Intent(Act%d.class);\n", r.Intn(nActivities))
				fmt.Fprintf(&b, "\t\tthis.startActivity(i);\n")
			}
			fmt.Fprintf(&b, "\t}\n")
		}
		fmt.Fprintf(&b, "}\n")
	}

	return map[string]string{"random.alite": b.String()}, layouts
}

func pick(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

func randomLayout(r *rand.Rand, idPool []string) string {
	var b strings.Builder
	var node func(depth int)
	node = func(depth int) {
		id := ""
		if r.Intn(2) == 0 {
			id = fmt.Sprintf(" android:id=%q", "@+id/"+pick(r, idPool))
		}
		if depth > 0 && r.Intn(3) == 0 {
			fmt.Fprintf(&b, "<LinearLayout%s>", id)
			for i, n := 0, 1+r.Intn(3); i < n; i++ {
				node(depth - 1)
			}
			b.WriteString("</LinearLayout>")
			return
		}
		cls := []string{"TextView", "Button", "ImageView", "CheckBox"}[r.Intn(4)]
		fmt.Fprintf(&b, "<%s%s/>", cls, id)
	}
	id := ""
	if r.Intn(2) == 0 {
		id = fmt.Sprintf(" android:id=%q", "@+id/"+pick(r, idPool))
	}
	fmt.Fprintf(&b, "<LinearLayout%s>", id)
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		node(2)
	}
	b.WriteString("</LinearLayout>")
	return b.String()
}

// randomBody emits random well-typed statements for one onCreate body.
type randomBody struct {
	r            *rand.Rand
	b            *strings.Builder
	idPool       []string
	nLayouts     int
	nListeners   int
	nActivities  int
	nAdapters    int
	selfListener bool

	viewVars  []string // declared with static type View
	groupVars []string // declared with static type LinearLayout
	inflater  bool
	nextVar   int
}

func (g *randomBody) fresh(prefix string) string {
	g.nextVar++
	return fmt.Sprintf("%s%d", prefix, g.nextVar)
}

func (g *randomBody) anyView() (string, bool) {
	all := append(append([]string{}, g.viewVars...), g.groupVars...)
	if len(all) == 0 {
		return "", false
	}
	return all[g.r.Intn(len(all))], true
}

// emit writes n random statements at the given indent depth. Declarations
// happen only at depth 2 (method top level), so nested blocks never leak
// scoped variables.
func (g *randomBody) emit(n, depth int) {
	tabs := strings.Repeat("\t", depth)
	topLevel := depth == 2
	for i := 0; i < n; i++ {
		switch c := g.r.Intn(16); {
		case c == 0:
			fmt.Fprintf(g.b, "%sthis.setContentView(R.layout.lay%d);\n", tabs, g.r.Intn(g.nLayouts))
		case c == 1 && topLevel:
			v := g.fresh("v")
			fmt.Fprintf(g.b, "%sView %s = this.findViewById(R.id.%s);\n", tabs, v, pick(g.r, g.idPool))
			g.viewVars = append(g.viewVars, v)
		case c == 2 && topLevel:
			v := g.fresh("g")
			fmt.Fprintf(g.b, "%sLinearLayout %s = new LinearLayout();\n", tabs, v)
			g.groupVars = append(g.groupVars, v)
		case c == 3 && topLevel:
			v := g.fresh("w")
			cls := []string{"Button", "TextView", "ImageView"}[g.r.Intn(3)]
			fmt.Fprintf(g.b, "%sView %s = new %s();\n", tabs, v, cls)
			g.viewVars = append(g.viewVars, v)
		case c == 4 && len(g.groupVars) > 0:
			child, ok := g.anyView()
			if !ok {
				continue
			}
			parent := g.groupVars[g.r.Intn(len(g.groupVars))]
			fmt.Fprintf(g.b, "%s%s.addView(%s);\n", tabs, parent, child)
		case c == 5:
			if v, ok := g.anyView(); ok {
				fmt.Fprintf(g.b, "%s%s.setId(R.id.%s);\n", tabs, v, pick(g.r, g.idPool))
			}
		case c == 6:
			if v, ok := g.anyView(); ok && topLevel {
				if g.selfListener && g.r.Intn(3) == 0 {
					fmt.Fprintf(g.b, "%s%s.setOnClickListener(this);\n", tabs, v)
					continue
				}
				l := g.fresh("l")
				j := g.r.Intn(g.nListeners)
				fmt.Fprintf(g.b, "%sLst%d %s = new Lst%d();\n", tabs, j, l, j)
				fmt.Fprintf(g.b, "%s%s.setOnClickListener(%s);\n", tabs, v, l)
			}
		case c == 7:
			if v, ok := g.anyView(); ok {
				fmt.Fprintf(g.b, "%sthis.stash = %s;\n", tabs, v)
			}
		case c == 8 && topLevel:
			v := g.fresh("s")
			fmt.Fprintf(g.b, "%sView %s = this.stash;\n", tabs, v)
			g.viewVars = append(g.viewVars, v)
		case c == 9 && topLevel:
			if !g.inflater {
				fmt.Fprintf(g.b, "%sLayoutInflater nf = this.getLayoutInflater();\n", tabs)
				g.inflater = true
			}
			v := g.fresh("p")
			fmt.Fprintf(g.b, "%sView %s = nf.inflate(R.layout.lay%d);\n", tabs, v, g.r.Intn(g.nLayouts))
			g.viewVars = append(g.viewVars, v)
		case c == 10 && depth < 4:
			fmt.Fprintf(g.b, "%sif (*) {\n", tabs)
			g.emit(1+g.r.Intn(2), depth+1)
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(g.b, "%s} else {\n", tabs)
				g.emit(1, depth+1)
			}
			fmt.Fprintf(g.b, "%s}\n", tabs)
		case c == 11 && depth < 4:
			fmt.Fprintf(g.b, "%swhile (*) {\n", tabs)
			g.emit(1+g.r.Intn(2), depth+1)
			fmt.Fprintf(g.b, "%s}\n", tabs)
		case c == 12 && topLevel:
			v := g.fresh("i")
			fmt.Fprintf(g.b, "%sIntent %s = new Intent(Act%d.class);\n", tabs, v, g.r.Intn(g.nActivities))
			fmt.Fprintf(g.b, "%sthis.startActivity(%s);\n", tabs, v)
		case c == 13 && topLevel:
			if v, ok := g.anyView(); ok {
				p := g.fresh("q")
				fmt.Fprintf(g.b, "%sViewGroup %s = %s.getParent();\n", tabs, p, v)
				g.viewVars = append(g.viewVars, p)
			}
		case c == 15 && len(g.groupVars) > 0:
			parent := g.groupVars[g.r.Intn(len(g.groupVars))]
			if g.r.Intn(2) == 0 {
				if v, ok := g.anyView(); ok {
					fmt.Fprintf(g.b, "%s%s.removeView(%s);\n", tabs, parent, v)
				}
			} else {
				fmt.Fprintf(g.b, "%s%s.removeAllViews();\n", tabs, parent)
			}
		case c == 14 && topLevel && g.nAdapters > 0:
			lv := g.fresh("lv")
			ad := g.fresh("ad")
			j := g.r.Intn(g.nAdapters)
			fmt.Fprintf(g.b, "%sListView %s = new ListView();\n", tabs, lv)
			fmt.Fprintf(g.b, "%sAd%d %s = new Ad%d();\n", tabs, j, ad, j)
			fmt.Fprintf(g.b, "%s%s.setAdapter(%s);\n", tabs, lv, ad)
			g.viewVars = append(g.viewVars, lv)
		}
	}
}

package corpus

import (
	"fmt"
	"strings"
)

// ModularApp generates a deterministic application split into one
// compilation unit per activity plus a shared helpers unit — the multi-file
// shape the incremental re-analysis tests and benchmarks edit one file at a
// time. Cross-unit dataflow is deliberate: every activity parks a view in
// the shared Repo and reads it back, so view objects flow through a field
// written by every unit, and a body edit in one unit retracts facts whose
// derivations reach all the others. The same nAct always yields the same
// bytes.
// ModularChainApp scales the modular shape up for solver benchmarking: the
// same one-unit-per-activity layout as ModularApp, but each activity walks
// its layout tree through a findViewById chain of the given depth, with a
// plain assignment between stages. Each stage's receiver only becomes known
// when the previous stage's result crosses that assignment's flow edge, so
// the outer fixpoint needs roughly one iteration per chain stage — a deep
// derivation chain rather than ModularApp's two-iteration plateau. Every
// activity also parks its button in the shared Repo and attaches a listener
// to the fetched result, so a ~nAct-value set flows back into every unit:
// an engine that re-applies every operation rule each iteration re-scans
// those fat sets depth times, while the delta worklist touches them only
// when they change. The same (nAct, depth) always yields the same bytes.
//
// nAct activities produce 2*nAct+1 compilation units (source + layout per
// activity, plus the shared helpers unit).
func ModularChainApp(nAct, depth int) (sources, layouts map[string]string) {
	if nAct < 1 {
		nAct = 1
	}
	if depth < 1 {
		depth = 1
	}
	sources = map[string]string{}
	layouts = map[string]string{}

	var h strings.Builder
	h.WriteString("class Repo {\n")
	h.WriteString("\tView held;\n")
	h.WriteString("\tvoid keep(View v) {\n\t\tthis.held = v;\n\t}\n")
	h.WriteString("\tView fetch() {\n\t\tView r = this.held;\n\t\treturn r;\n\t}\n")
	h.WriteString("}\n")
	h.WriteString("class SharedClick implements OnClickListener {\n")
	h.WriteString("\tView last;\n")
	h.WriteString("\tvoid onClick(View v) {\n\t\tthis.last = v;\n\t}\n")
	h.WriteString("}\n")
	sources["shared.alite"] = h.String()

	for i := 0; i < nAct; i++ {
		name := fmt.Sprintf("act%d", i)

		// Nested layout: depth levels of containers, each with its own id,
		// so stage k of the chain can look up level k from level k-1.
		var x strings.Builder
		for d := 0; d < depth; d++ {
			fmt.Fprintf(&x, `<LinearLayout android:id="@+id/%s_d%d">`, name, d)
		}
		fmt.Fprintf(&x, `<TextView android:id="@+id/%s_leaf"/>`, name)
		for d := 0; d < depth; d++ {
			x.WriteString(`</LinearLayout>`)
		}
		layouts[name] = fmt.Sprintf(
			`<LinearLayout android:id="@+id/%[1]s_root">`+
				`<Button android:id="@+id/%[1]s_btn"/>`+
				`%[2]s`+
				`</LinearLayout>`, name, x.String())

		var b strings.Builder
		fmt.Fprintf(&b, "class Lst%d implements OnLongClickListener {\n", i)
		b.WriteString("\tView seen;\n")
		b.WriteString("\tvoid onLongClick(View v) {\n\t\tthis.seen = v;\n\t}\n")
		b.WriteString("}\n")
		fmt.Fprintf(&b, "class Act%d extends Activity {\n", i)
		b.WriteString("\tView stash;\n")
		b.WriteString("\tvoid onCreate() {\n")
		fmt.Fprintf(&b, "\t\tthis.setContentView(R.layout.%s);\n", name)
		fmt.Fprintf(&b, "\t\tView btn = this.findViewById(R.id.%s_btn);\n", name)
		b.WriteString("\t\tSharedClick sc = new SharedClick();\n")
		b.WriteString("\t\tbtn.setOnClickListener(sc);\n")
		b.WriteString("\t\tRepo rp = new Repo();\n")
		b.WriteString("\t\trp.keep(btn);\n")
		b.WriteString("\t\tView back = rp.fetch();\n")
		fmt.Fprintf(&b, "\t\tLst%d ll = new Lst%d();\n", i, i)
		b.WriteString("\t\tback.setOnLongClickListener(ll);\n")
		fmt.Fprintf(&b, "\t\tView c0 = this.findViewById(R.id.%s_d0);\n", name)
		for d := 1; d < depth; d++ {
			fmt.Fprintf(&b, "\t\tView h%d = c%d;\n", d-1, d-1)
			fmt.Fprintf(&b, "\t\tView c%d = h%d.findViewById(R.id.%s_d%d);\n", d, d-1, name, d)
		}
		fmt.Fprintf(&b, "\t\tView hl = c%d;\n", depth-1)
		fmt.Fprintf(&b, "\t\tView leaf = hl.findViewById(R.id.%s_leaf);\n", name)
		b.WriteString("\t\tthis.stash = leaf;\n")
		fmt.Fprintf(&b, "\t\tIntent it = new Intent(Act%d.class);\n", (i+1)%nAct)
		b.WriteString("\t\tthis.startActivity(it);\n")
		b.WriteString("\t}\n")
		b.WriteString("}\n")
		sources[name+".alite"] = b.String()
	}
	return sources, layouts
}

func ModularApp(nAct int) (sources, layouts map[string]string) {
	if nAct < 1 {
		nAct = 1
	}
	sources = map[string]string{}
	layouts = map[string]string{}

	var h strings.Builder
	h.WriteString("class Repo {\n")
	h.WriteString("\tView held;\n")
	h.WriteString("\tvoid keep(View v) {\n\t\tthis.held = v;\n\t}\n")
	h.WriteString("\tView fetch() {\n\t\tView r = this.held;\n\t\treturn r;\n\t}\n")
	h.WriteString("}\n")
	h.WriteString("class SharedClick implements OnClickListener {\n")
	h.WriteString("\tView last;\n")
	h.WriteString("\tvoid onClick(View v) {\n")
	h.WriteString("\t\tthis.last = v;\n")
	h.WriteString("\t\tView w = v.findViewById(R.id.shared_tag);\n")
	h.WriteString("\t}\n}\n")
	sources["shared.alite"] = h.String()

	layouts["panel"] = `<LinearLayout android:id="@+id/panel_root">` +
		`<TextView android:id="@+id/shared_tag"/>` +
		`<Button android:id="@+id/panel_btn" android:onClick="onPanelClick"/>` +
		`</LinearLayout>`

	for i := 0; i < nAct; i++ {
		name := fmt.Sprintf("act%d", i)
		layouts[name] = fmt.Sprintf(
			`<LinearLayout android:id="@+id/%[1]s_root">`+
				`<Button android:id="@+id/%[1]s_btn"/>`+
				`<LinearLayout>`+
				`<TextView android:id="@+id/%[1]s_txt"/>`+
				`<CheckBox android:id="@+id/shared_tag"/>`+
				`</LinearLayout>`+
				`</LinearLayout>`, name)

		var b strings.Builder
		fmt.Fprintf(&b, "class Lst%d implements OnLongClickListener {\n", i)
		b.WriteString("\tView seen;\n")
		b.WriteString("\tvoid onLongClick(View v) {\n\t\tthis.seen = v;\n\t}\n")
		b.WriteString("}\n")
		fmt.Fprintf(&b, "class Act%d extends Activity {\n", i)
		b.WriteString("\tView stash;\n")
		b.WriteString("\tvoid onCreate() {\n")
		fmt.Fprintf(&b, "\t\tthis.setContentView(R.layout.%s);\n", name)
		fmt.Fprintf(&b, "\t\tView btn = this.findViewById(R.id.%s_btn);\n", name)
		b.WriteString("\t\tSharedClick sc = new SharedClick();\n")
		b.WriteString("\t\tbtn.setOnClickListener(sc);\n")
		fmt.Fprintf(&b, "\t\tLst%d ll = new Lst%d();\n", i, i)
		b.WriteString("\t\tbtn.setOnLongClickListener(ll);\n")
		b.WriteString("\t\tLinearLayout box = new LinearLayout();\n")
		b.WriteString("\t\tView w = new Button();\n")
		fmt.Fprintf(&b, "\t\tw.setId(R.id.%s_txt);\n", name)
		b.WriteString("\t\tbox.addView(w);\n")
		b.WriteString("\t\tLayoutInflater nf = this.getLayoutInflater();\n")
		b.WriteString("\t\tView p = nf.inflate(R.layout.panel);\n")
		b.WriteString("\t\tbox.addView(p);\n")
		b.WriteString("\t\tRepo rp = new Repo();\n")
		b.WriteString("\t\trp.keep(w);\n")
		b.WriteString("\t\tView back = rp.fetch();\n")
		b.WriteString("\t\tthis.stash = back;\n")
		fmt.Fprintf(&b, "\t\tIntent it = new Intent(Act%d.class);\n", (i+1)%nAct)
		b.WriteString("\t\tthis.startActivity(it);\n")
		b.WriteString("\t}\n")
		b.WriteString("\tvoid onPanelClick(View v) {\n\t\tthis.stash = v;\n\t}\n")
		if i%2 == 0 {
			b.WriteString("\tvoid onCreateOptionsMenu(Menu menu) {\n")
			b.WriteString("\t\tMenuItem mi = menu.add(R.id.shared_tag);\n")
			b.WriteString("\t}\n")
			b.WriteString("\tvoid onOptionsItemSelected(MenuItem item) {\n\t}\n")
		}
		b.WriteString("}\n")
		sources[name+".alite"] = b.String()
	}
	return sources, layouts
}

// Package corpus provides the analysis workloads: the paper's Figure 1
// running example (a ConnectBot fragment) transcribed to ALite, and a
// deterministic synthetic-application generator that reproduces the feature
// profiles of the 20 real applications in Table 1 of the paper.
package corpus

import (
	"strings"

	"gator/internal/alite"
	"gator/internal/layout"
)

// Figure1Source is the running example of the paper (Figure 1): the
// ConsoleActivity fragment of ConnectBot with the EscapeButtonListener.
// Line-for-line it follows the paper; the helper findViewById(int) of
// ConsoleActivity is renamed findCurrentView to keep the override relation
// with the platform's findViewById out of the example (the paper's version
// overrides Activity.findViewById; both versions exercise the same ops).
const Figure1Source = `
class ConsoleActivity extends Activity {
	ViewFlipper flip;

	View findCurrentView(int a) {
		ViewFlipper b = this.flip;
		View c = b.getCurrentView();      // FindView3 (child-only)
		View d = c.findViewById(a);       // FindView1
		return d;
	}

	void onCreate() {
		this.setContentView(R.layout.act_console);      // Inflate2
		View e = this.findViewById(R.id.console_flip);  // FindView2
		ViewFlipper f = (ViewFlipper) e;
		this.flip = f;
		View g = this.findViewById(R.id.button_esc);    // FindView2
		ImageView h = (ImageView) g;
		EscapeButtonListener j = new EscapeButtonListener(this);
		h.setOnClickListener(j);                        // SetListener
	}

	void addNewTerminalView(TerminalBridge bridge) {
		LayoutInflater inflater = this.getLayoutInflater();
		View k = inflater.inflate(R.layout.item_terminal); // Inflate1
		RelativeLayout n = (RelativeLayout) k;
		TerminalView m = new TerminalView(bridge);
		m.setId(R.id.console_flip);                     // SetId
		n.addView(m);                                   // AddView2
		ViewFlipper p = this.flip;
		p.addView(n);                                   // AddView2
	}
}

class TerminalView extends ViewGroup {
	TerminalBridge bridge;

	TerminalView(TerminalBridge b) {
		this.bridge = b;
	}
}

class TerminalBridge {
	TerminalBridge() { }
}

class EscapeButtonListener implements OnClickListener {
	ConsoleActivity cact;

	EscapeButtonListener(ConsoleActivity q) {
		this.cact = q;
	}

	void onClick(View r) {
		ConsoleActivity s = this.cact;
		View t = s.findCurrentView(R.id.console_flip);
		TerminalView v = (TerminalView) t;
		// send ESC key to terminal associated with v
	}
}
`

// figure1ClosedDriver closes the Figure 1 example for concrete execution:
// the paper notes that "calls to [addNewTerminalView] occur in the rest of
// the code of ConsoleActivity; for brevity, this code is not shown". This
// companion listener supplies the missing caller as a click handler.
const figure1ClosedDriver = `
class OpenTerminalListener implements OnClickListener {
	ConsoleActivity owner;

	OpenTerminalListener(ConsoleActivity a) {
		this.owner = a;
	}

	void onClick(View w) {
		ConsoleActivity a = this.owner;
		TerminalBridge bridge = new TerminalBridge();
		a.addNewTerminalView(bridge);
	}
}
`

// Figure1ActConsoleXML is the act_console layout from Figure 1.
const Figure1ActConsoleXML = `
<RelativeLayout xmlns:android="http://schemas.android.com/apk/res/android">
    <ViewFlipper android:id="@+id/console_flip" />
    <RelativeLayout android:id="@+id/keyboard_group">
        <ImageView android:id="@+id/button_esc" />
    </RelativeLayout>
</RelativeLayout>
`

// Figure1ItemTerminalXML is the item_terminal layout from Figure 1.
const Figure1ItemTerminalXML = `
<RelativeLayout xmlns:android="http://schemas.android.com/apk/res/android">
    <TextView android:id="@+id/terminal_overlay" />
</RelativeLayout>
`

// Figure1Files parses and returns the Figure 1 sources.
func Figure1Files() []*alite.File {
	return []*alite.File{alite.MustParse("connectbot.alite", Figure1Source)}
}

// Figure1ClosedFiles returns the Figure 1 sources with the paper's unshown
// caller of addNewTerminalView restored: onCreate additionally registers an
// OpenTerminalListener, whose click handler opens a new terminal. Analysis
// results for the original statements are unchanged; the interpreter can
// now reach every method.
func Figure1ClosedFiles() []*alite.File {
	closed := strings.Replace(Figure1Source,
		"h.setOnClickListener(j);                        // SetListener",
		`h.setOnClickListener(j);                        // SetListener
		View g2 = this.findViewById(R.id.keyboard_group);
		OpenTerminalListener ot = new OpenTerminalListener(this);
		g2.setOnClickListener(ot);`, 1)
	return []*alite.File{
		alite.MustParse("connectbot.alite", closed),
		alite.MustParse("driver.alite", figure1ClosedDriver),
	}
}

// Figure1Layouts parses and returns the Figure 1 layouts (unlinked).
func Figure1Layouts() map[string]*layout.Layout {
	return map[string]*layout.Layout{
		"act_console":   layout.MustParse("act_console", Figure1ActConsoleXML),
		"item_terminal": layout.MustParse("item_terminal", Figure1ItemTerminalXML),
	}
}

// Package trace is the pipeline's instrumentation layer: typed events
// (phase boundaries, solver rule firings, per-iteration worklist sizes,
// dataflow-solver convergence) emitted through a Sink, with optional
// aggregation into a metrics.Registry, and exporters for JSON lines and the
// Chrome trace_event format (chrome.go).
//
// Overhead contract (see DESIGN.md, "Observability"): tracing disabled
// means a nil *Tracer or nil *Scope, and every method on them is a no-op
// that performs no allocation. Instrumented code therefore calls
// scope.Begin(...)/scope.Rule(...) unconditionally; the disabled path is a
// nil check. The no-allocation guard in internal/core
// (TestTracingDisabledZeroAlloc, BenchmarkSolveTracingDisabled) keeps this
// contract honest.
package trace

import (
	"sync"
	"time"
)

// Registry aggregates counters and histogram observations alongside the
// event stream. *metrics.Registry implements it; trace declares only the
// interface so internal/metrics (which measures core results) can depend on
// internal/core while core depends on trace.
type Registry interface {
	// Add increments the named counter.
	Add(name string, n int64)
	// Observe records one histogram observation.
	Observe(name string, v int64)
}

// Kind classifies an Event. The values are part of the JSON export format;
// do not renumber or rename.
type Kind string

const (
	// KindPhaseBegin/KindPhaseEnd bracket one named pipeline phase
	// ("load", "build", "solve", "check:<id>", "app") of one app.
	KindPhaseBegin Kind = "phase-begin"
	KindPhaseEnd   Kind = "phase-end"
	// KindIteration reports one outer fixpoint round; N is the worklist
	// size entering flow propagation.
	KindIteration Kind = "iteration"
	// KindRule reports inference-rule firings; Name is the operation-node
	// kind (the paper's rule name, e.g. "FindView2") and N the number of
	// operation nodes of that kind that changed the solution this round.
	KindRule Kind = "rule"
	// KindDataflow reports one dataflow-solver run to fixpoint; Name is
	// the method whose CFG was solved and N the block visits needed.
	KindDataflow Kind = "dataflow"
	// KindCounter is a free-form counter sample.
	KindCounter Kind = "counter"
	// KindCache reports one content-addressed cache probe; Name is the
	// cache ("parse", "result"), N is 1 for a hit and 0 for a miss.
	KindCache Kind = "cache"
)

// Event is one structured trace record.
type Event struct {
	Kind Kind `json:"kind"`
	// App labels the analyzed application; Worker is the batch worker that
	// produced the event (0 outside batch runs).
	App    string `json:"app,omitempty"`
	Worker int    `json:"worker"`
	// Name is the phase, rule, method, or counter name.
	Name string `json:"name,omitempty"`
	// N is the event payload: worklist size, firings, iterations, or a
	// counter value.
	N int64 `json:"n,omitempty"`
	// TS is the monotonic timestamp, relative to the tracer's start.
	// It marshals as integer nanoseconds.
	TS time.Duration `json:"tsNs"`
	// Trace is the W3C trace id of the request that drove this solve, when
	// the run is request-scoped (gatord sets it from the incoming or
	// generated traceparent). Empty for CLI and batch runs.
	Trace string `json:"trace,omitempty"`
}

// Sink receives emitted events. Implementations need not be goroutine-safe:
// the Tracer serializes Emit calls.
type Sink interface {
	Emit(Event)
}

// Clock supplies monotonic timestamps relative to an arbitrary origin. The
// default clock is wall time since New; tests inject StepClock for
// reproducible output.
type Clock func() time.Duration

// StepClock returns a synthetic clock that advances by step on every
// reading — monotonic, deterministic timestamps for golden tests.
func StepClock(step time.Duration) Clock {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// Tracer is the fan-in point for a run's events. A nil *Tracer is the
// disabled tracer: Scope returns nil and Emit does nothing.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	clock Clock
	reg   Registry
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock replaces the wall clock (for tests).
func WithClock(c Clock) Option { return func(t *Tracer) { t.clock = c } }

// WithRegistry attaches a counter/histogram registry: rule firings,
// worklist sizes, and dataflow iterations aggregate there in addition to
// streaming through the sink.
func WithRegistry(r Registry) Option { return func(t *Tracer) { t.reg = r } }

// New creates a tracer writing to sink.
func New(sink Sink, opts ...Option) *Tracer {
	t := &Tracer{sink: sink}
	for _, o := range opts {
		o(t)
	}
	if t.clock == nil {
		start := time.Now()
		t.clock = func() time.Duration { return time.Since(start) }
	}
	return t
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the attached registry (nil when absent or disabled).
func (t *Tracer) Registry() Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Emit stamps and records one event. Safe for concurrent use.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.TS = t.clock()
	t.sink.Emit(ev)
	t.mu.Unlock()
}

// Scope binds events to one application and worker. A nil tracer yields a
// nil scope, on which every method is an allocation-free no-op — this is
// the handle threaded through the solver and checkers.
func (t *Tracer) Scope(app string, worker int) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, app: app, worker: worker}
}

// RequestScope is Scope plus a trace id: every event the scope emits
// carries the id, tying solver internals to the request that triggered
// them (the id appears in exported JSON/Chrome traces and is what
// gatord's /v1/debug/traces endpoint is keyed by).
func (t *Tracer) RequestScope(app string, worker int, traceID string) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, app: app, worker: worker, trace: traceID}
}

// Scope is a Tracer bound to one (app, worker) pair and, for
// request-scoped runs, a trace id.
type Scope struct {
	t      *Tracer
	app    string
	worker int
	trace  string
}

// Enabled reports whether the scope records events. Instrumented code uses
// it to skip argument preparation that would itself allocate.
func (s *Scope) Enabled() bool { return s != nil }

// TraceID returns the trace id the scope stamps on events ("" when the
// scope is nil or not request-bound).
func (s *Scope) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// emit stamps the scope's trace id and forwards to the tracer.
func (s *Scope) emit(ev Event) {
	ev.Trace = s.trace
	s.t.Emit(ev)
}

// Begin marks the start of a named phase.
func (s *Scope) Begin(phase string) {
	if s == nil {
		return
	}
	s.emit(Event{Kind: KindPhaseBegin, App: s.app, Worker: s.worker, Name: phase})
}

// End marks the end of a named phase.
func (s *Scope) End(phase string) {
	if s == nil {
		return
	}
	s.emit(Event{Kind: KindPhaseEnd, App: s.app, Worker: s.worker, Name: phase})
}

// Iteration reports one outer fixpoint round with its entry worklist size.
func (s *Scope) Iteration(round int, worklist int) {
	if s == nil {
		return
	}
	s.emit(Event{Kind: KindIteration, App: s.app, Worker: s.worker, Name: "worklist", N: int64(worklist)})
	if s.t.reg != nil {
		s.t.reg.Observe("solver/worklist", int64(worklist))
		s.t.reg.Add("solver/iterations", 1)
	}
}

// Rule reports fired inference-rule instances for one operation kind.
func (s *Scope) Rule(rule string, fired int64) {
	if s == nil || fired == 0 {
		return
	}
	s.emit(Event{Kind: KindRule, App: s.app, Worker: s.worker, Name: rule, N: fired})
	if s.t.reg != nil {
		s.t.reg.Add("rule/"+rule, fired)
	}
}

// Dataflow reports one CFG dataflow solve and its block-visit count.
func (s *Scope) Dataflow(method string, visits int64) {
	if s == nil {
		return
	}
	s.emit(Event{Kind: KindDataflow, App: s.app, Worker: s.worker, Name: method, N: visits})
	if s.t.reg != nil {
		s.t.reg.Observe("dataflow/visits", visits)
		s.t.reg.Add("dataflow/solves", 1)
	}
}

// Count emits a free-form counter sample and aggregates it.
func (s *Scope) Count(name string, n int64) {
	if s == nil {
		return
	}
	s.emit(Event{Kind: KindCounter, App: s.app, Worker: s.worker, Name: name, N: n})
	if s.t.reg != nil {
		s.t.reg.Add(name, n)
	}
}

// CacheProbe reports one content-addressed cache lookup (incremental
// re-analysis: parse cache, on-disk result store) and aggregates hit/miss
// counters as "cache/<name>/hits" and "cache/<name>/misses".
func (s *Scope) CacheProbe(name string, hit bool) {
	if s == nil {
		return
	}
	var n int64
	if hit {
		n = 1
	}
	s.emit(Event{Kind: KindCache, App: s.app, Worker: s.worker, Name: name, N: n})
	if s.t.reg != nil {
		if hit {
			s.t.reg.Add("cache/"+name+"/hits", 1)
		} else {
			s.t.reg.Add("cache/"+name+"/misses", 1)
		}
	}
}

// Collect is a Sink that buffers events in memory, for tests and for
// exporting a finished run (WriteJSON, Chrome).
type Collect struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends one event.
func (c *Collect) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of the buffered events in emission order.
func (c *Collect) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of buffered events.
func (c *Collect) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden chrome trace file")

// goldenEvents builds a deterministic event stream through the public API
// with a synthetic monotonic clock: a two-worker batch, each app running
// load then solve with an iteration and a rule firing.
func goldenEvents() []Event {
	sink := &Collect{}
	tr := New(sink, WithClock(StepClock(10*time.Microsecond)))
	a := tr.Scope("alpha", 0)
	b := tr.Scope("beta", 1)
	a.Begin("load")
	a.End("load")
	b.Begin("load")
	a.Begin("solve")
	a.Iteration(1, 17)
	a.Rule("FindView2", 4)
	b.End("load")
	b.Begin("solve")
	a.Dataflow("Alpha.onCreate()", 6)
	a.End("solve")
	b.Iteration(1, 3)
	b.End("solve")
	return sink.Events()
}

// TestChromeGolden locks the Chrome trace_event export byte-for-byte:
// stable field ordering and the synthetic timestamps of the fake clock.
// Regenerate with `go test ./internal/trace -run TestChromeGolden -update`.
func TestChromeGolden(t *testing.T) {
	got, err := Chrome(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chrome export drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeDeterministic: two exports of the same logical run are
// byte-identical.
func TestChromeDeterministic(t *testing.T) {
	a, err := Chrome(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chrome(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("chrome export is not deterministic")
	}
}

// TestChromeShape: the export is valid trace_event JSON — an object with a
// traceEvents array whose spans pair B/E phases per (pid, tid) and whose
// timestamps are monotonic per thread.
func TestChromeShape(t *testing.T) {
	data, err := Chrome(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	depth := map[int]int{}
	lastTS := map[int]int64{}
	for _, ev := range log.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < lastTS[ev.TID] {
			t.Errorf("tid %d: ts %d goes backwards (last %d)", ev.TID, ev.TS, lastTS[ev.TID])
		}
		lastTS[ev.TID] = ev.TS
		switch ev.Ph {
		case "B":
			depth[ev.TID]++
		case "E":
			depth[ev.TID]--
			if depth[ev.TID] < 0 {
				t.Errorf("tid %d: unbalanced E event %q", ev.TID, ev.Name)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d: %d unclosed phase spans", tid, d)
		}
	}
}

package trace

// Exporters for a finished event stream: newline-delimited JSON (one event
// per line, stable field order) and the Chrome trace_event format, loadable
// in chrome://tracing and Perfetto. Both renderings are deterministic for a
// deterministic event stream: fields marshal in struct order and no wall
// clock is consulted — timestamps come from the events themselves, so a
// fake clock yields byte-stable golden output.

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes events as newline-delimited JSON objects.
func WriteJSON(w io.Writer, events []Event) error {
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record. Field order is the export format;
// encoding/json preserves it.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	TS   int64       `json:"ts"` // microseconds
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	S    string      `json:"s,omitempty"` // instant-event scope
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	App   string `json:"app,omitempty"`
	N     *int64 `json:"n,omitempty"`
	Name  string `json:"name,omitempty"`
	Trace string `json:"trace,omitempty"`
}

type chromeLog struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome renders events in the Chrome trace_event JSON format. Batch
// workers map to threads (tid = worker+1), so a parallel run renders as one
// lane per worker with per-app phase spans; iteration/rule/dataflow events
// appear as counter series and instants inside the owning lane.
func Chrome(events []Event) ([]byte, error) {
	log := chromeLog{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	log.TraceEvents = append(log.TraceEvents,
		chromeEvent{Name: "process_name", Ph: "M", PID: 1, TID: 0,
			Args: &chromeArgs{Name: "gator"}})
	for _, ev := range events {
		ce := chromeEvent{
			TS:  ev.TS.Microseconds(),
			PID: 1,
			TID: ev.Worker + 1,
		}
		switch ev.Kind {
		case KindPhaseBegin, KindPhaseEnd:
			ce.Name = ev.Name
			if ev.App != "" {
				ce.Name = ev.App + ":" + ev.Name
			}
			if ev.Kind == KindPhaseBegin {
				ce.Ph = "B"
			} else {
				ce.Ph = "E"
			}
			ce.Args = &chromeArgs{App: ev.App}
		case KindIteration:
			ce.Name = "worklist"
			ce.Ph = "C"
			n := ev.N
			ce.Args = &chromeArgs{App: ev.App, N: &n}
		case KindRule:
			ce.Name = "rule " + ev.Name
			ce.Ph = "C"
			n := ev.N
			ce.Args = &chromeArgs{App: ev.App, N: &n}
		case KindDataflow:
			ce.Name = "dataflow " + ev.Name
			ce.Ph = "i"
			ce.S = "t"
			n := ev.N
			ce.Args = &chromeArgs{App: ev.App, N: &n}
		case KindCounter:
			ce.Name = ev.Name
			ce.Ph = "C"
			n := ev.N
			ce.Args = &chromeArgs{App: ev.App, N: &n}
		case KindCache:
			ce.Name = "cache " + ev.Name
			ce.Ph = "i"
			ce.S = "t"
			n := ev.N
			ce.Args = &chromeArgs{App: ev.App, N: &n}
		default:
			return nil, fmt.Errorf("trace: unknown event kind %q", ev.Kind)
		}
		if ce.Args != nil {
			ce.Args.Trace = ev.Trace
		}
		log.TraceEvents = append(log.TraceEvents, ce)
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteChrome writes the Chrome trace_event rendering of events.
func WriteChrome(w io.Writer, events []Event) error {
	data, err := Chrome(events)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

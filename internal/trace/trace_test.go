package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeRegistry implements Registry for tests; the production implementation
// (*metrics.Registry) is exercised in internal/metrics and internal/core —
// importing it here would close the core→trace→metrics→core cycle through
// the test binary.
type fakeRegistry struct {
	counters map[string]int64
	observed map[string][]int64
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{counters: map[string]int64{}, observed: map[string][]int64{}}
}

func (r *fakeRegistry) Add(name string, n int64)     { r.counters[name] += n }
func (r *fakeRegistry) Observe(name string, v int64) { r.observed[name] = append(r.observed[name], v) }

func TestTracerEmitsScopedEvents(t *testing.T) {
	sink := &Collect{}
	reg := newFakeRegistry()
	tr := New(sink, WithClock(StepClock(time.Millisecond)), WithRegistry(reg))

	s := tr.Scope("notepad", 2)
	s.Begin("solve")
	s.Iteration(1, 42)
	s.Rule("FindView2", 3)
	s.Rule("Inflate1", 0) // zero firings are dropped
	s.Dataflow("Main.onCreate()", 7)
	s.Count("custom", 5)
	s.End("solve")

	evs := sink.Events()
	wantKinds := []Kind{KindPhaseBegin, KindIteration, KindRule, KindDataflow, KindCounter, KindPhaseEnd}
	if len(evs) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(wantKinds), evs)
	}
	var last time.Duration
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind, wantKinds[i])
		}
		if ev.App != "notepad" || ev.Worker != 2 {
			t.Errorf("event %d scope = (%s, %d)", i, ev.App, ev.Worker)
		}
		if ev.TS <= last {
			t.Errorf("event %d timestamp %v not monotonic after %v", i, ev.TS, last)
		}
		last = ev.TS
	}
	if evs[2].Name != "FindView2" || evs[2].N != 3 {
		t.Errorf("rule event = %+v", evs[2])
	}

	// Registry aggregation rode along.
	if got := reg.counters["rule/FindView2"]; got != 3 {
		t.Errorf("rule counter = %d", got)
	}
	if got := reg.counters["solver/iterations"]; got != 1 {
		t.Errorf("iterations counter = %d", got)
	}
	if got := reg.observed["solver/worklist"]; len(got) != 1 || got[0] != 42 {
		t.Errorf("worklist observations = %v", got)
	}
}

// TestDisabledTracingNoAlloc: every emission path on a nil tracer/scope is
// an allocation-free no-op — the package's overhead contract.
func TestDisabledTracingNoAlloc(t *testing.T) {
	var tr *Tracer
	s := tr.Scope("app", 0)
	if tr.Enabled() || s.Enabled() {
		t.Fatal("nil tracer/scope reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindCounter})
		s.Begin("solve")
		s.Iteration(3, 100)
		s.Rule("FindView2", 5)
		s.Dataflow("m", 9)
		s.Count("x", 1)
		s.End("solve")
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v allocs/op, want 0", allocs)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	sink := &Collect{}
	tr := New(sink)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.Scope("app", w)
			for i := 0; i < 100; i++ {
				s.Iteration(i, i)
			}
		}(w)
	}
	wg.Wait()
	if sink.Len() != 800 {
		t.Errorf("events = %d, want 800", sink.Len())
	}
}

func TestWriteJSON(t *testing.T) {
	sink := &Collect{}
	tr := New(sink, WithClock(StepClock(time.Microsecond)))
	s := tr.Scope("a", 1)
	s.Begin("load")
	s.End("load")
	var b strings.Builder
	if err := WriteJSON(&b, sink.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	want := `{"kind":"phase-begin","app":"a","worker":1,"name":"load","tsNs":1000}`
	if lines[0] != want {
		t.Errorf("line 0 = %s\nwant     %s", lines[0], want)
	}
}

func TestRequestScopeStampsTraceID(t *testing.T) {
	var sink Collect
	tr := New(&sink, WithClock(StepClock(time.Microsecond)))
	sc := tr.RequestScope("app", 0, "0af7651916cd43dd8448eb211c80319c")
	if sc.TraceID() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("TraceID = %q", sc.TraceID())
	}
	sc.Begin("solve")
	sc.Iteration(1, 4)
	sc.Rule("FindView2", 2)
	sc.CacheProbe("parse", true)
	sc.End("solve")
	events := sink.Events()
	if len(events) != 5 {
		t.Fatalf("%d events", len(events))
	}
	for _, ev := range events {
		if ev.Trace != "0af7651916cd43dd8448eb211c80319c" {
			t.Fatalf("event %+v lost the trace id", ev)
		}
	}

	// The id survives both exporters: JSON lines carry a trace field, and
	// the Chrome rendering accepts every kind (including cache probes).
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `"trace":"0af7651916cd43dd8448eb211c80319c"`); n != 5 {
		t.Fatalf("JSON export has %d trace fields, want 5:\n%s", n, buf.String())
	}
	chrome, err := Chrome(events)
	if err != nil {
		t.Fatalf("Chrome export: %v", err)
	}
	if !strings.Contains(string(chrome), "0af7651916cd43dd8448eb211c80319c") {
		t.Fatal("Chrome export dropped the trace id")
	}

	// Plain scopes stay trace-free so CLI output is unchanged.
	plain := tr.Scope("app", 0)
	if plain.TraceID() != "" {
		t.Fatal("plain scope has a trace id")
	}
	plain.Begin("solve")
	evs := sink.Events()
	if last := evs[len(evs)-1]; last.Trace != "" {
		t.Fatalf("plain scope stamped %q", last.Trace)
	}
	var nilScope *Scope
	if nilScope.TraceID() != "" {
		t.Fatal("nil scope trace id")
	}
}

package metrics

// A minimal Prometheus text-format (0.0.4) parser — just enough to
// validate what WritePrometheus emits and what a scraper would ingest:
// HELP/TYPE comment grammar, sample-line grammar (name, label set, float
// value), TYPE-before-samples ordering, and histogram invariants
// (cumulative buckets monotone in le, +Inf bucket present and equal to
// _count). The renderer tests and the gatord telemetry smoke both run
// scrape output through it, so a malformed exposition fails CI rather
// than a scraper in production.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name (histogram samples keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels holds the sample's label set.
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: its TYPE, HELP, and samples in input
// order.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParsePrometheus parses and validates a text-format exposition, returning
// the families keyed by name.
func ParsePrometheus(data []byte) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, lineNo, fams); err != nil {
				return nil, err
			}
			continue
		}
		sample, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		famName := familyOf(sample.Name, fams)
		fam, ok := fams[famName]
		if !ok {
			return nil, fmt.Errorf("prom: line %d: sample %s precedes its # TYPE declaration", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func parseComment(line string, lineNo int, fams map[string]*PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("prom: line %d: invalid metric name %q", lineNo, name)
	}
	fam, ok := fams[name]
	if !ok {
		fam = &PromFamily{Name: name}
		fams[name] = fam
	}
	switch fields[1] {
	case "HELP":
		if fam.Help != "" {
			return fmt.Errorf("prom: line %d: duplicate HELP for %s", lineNo, name)
		}
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
	case "TYPE":
		if fam.Type != "" {
			return fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, name)
		}
		if len(fam.Samples) > 0 {
			return fmt.Errorf("prom: line %d: TYPE for %s after its samples", lineNo, name)
		}
		typ := ""
		if len(fields) >= 4 {
			typ = fields[3]
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
			fam.Type = typ
		default:
			return fmt.Errorf("prom: line %d: unknown TYPE %q for %s", lineNo, typ, name)
		}
	}
	return nil
}

func parseSample(line string, lineNo int) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("prom: line %d: no value on sample line %q", lineNo, line)
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("prom: line %d: invalid sample name %q", lineNo, s.Name)
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		// The closing brace must be found quote-aware: label values may
		// themselves contain '{'/'}' (e.g. route="/v1/sessions/{id}").
		end := labelBlockEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("prom: line %d: unterminated label set in %q", lineNo, line)
		}
		if err := parseLabels(rest[1:end], lineNo, s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// Timestamps (a second space-separated field) are permitted by the
	// format; WritePrometheus never emits them but a parser must not choke.
	valueField := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valueField = rest[:sp]
	}
	v, err := strconv.ParseFloat(valueField, 64)
	if err != nil {
		return s, fmt.Errorf("prom: line %d: bad sample value %q", lineNo, valueField)
	}
	s.Value = v
	return s, nil
}

// labelBlockEnd returns the index of the '}' closing the label block that
// starts at s[0] == '{', skipping quoted label values (with escapes); -1
// when unterminated.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

func parseLabels(body string, lineNo int, out map[string]string) error {
	if body == "" {
		return nil
	}
	// Label values are quoted and may contain escaped quotes; scan rather
	// than split on commas.
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("prom: line %d: malformed label in %q", lineNo, body)
		}
		key := body[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("prom: line %d: invalid label name %q", lineNo, key)
		}
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("prom: line %d: unterminated label value for %q", lineNo, key)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("prom: line %d: duplicate label %q", lineNo, key)
		}
		out[key] = val.String()
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// familyOf maps a sample name to its family: histogram suffixes attach to
// the declared base family when one exists.
func familyOf(name string, fams map[string]*PromFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, exists := fams[base]; exists && f.Type == "histogram" {
			return base
		}
	}
	return name
}

// checkHistogram validates one histogram family's invariants per label set:
// buckets cumulative and monotone in le, a +Inf bucket present, and the
// +Inf bucket equal to the _count sample.
func checkHistogram(fam *PromFamily) error {
	type seriesKey string
	keyOf := func(labels map[string]string) seriesKey {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return seriesKey(strings.Join(parts, ","))
	}
	type seriesState struct {
		bounds []float64
		counts []float64
		inf    *float64
		count  *float64
	}
	series := map[seriesKey]*seriesState{}
	state := func(labels map[string]string) *seriesState {
		k := keyOf(labels)
		st, ok := series[k]
		if !ok {
			st = &seriesState{}
			series[k] = st
		}
		return st
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			st := state(s.Labels)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("prom: %s: bucket sample without le label", fam.Name)
			}
			if le == "+Inf" {
				v := s.Value
				st.inf = &v
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("prom: %s: bad le %q", fam.Name, le)
			}
			st.bounds = append(st.bounds, bound)
			st.counts = append(st.counts, s.Value)
		case fam.Name + "_count":
			st := state(s.Labels)
			v := s.Value
			st.count = &v
		case fam.Name + "_sum":
			// no invariant beyond being a float, already checked
		default:
			return fmt.Errorf("prom: %s: unexpected sample %s in histogram family", fam.Name, s.Name)
		}
	}
	for k, st := range series {
		label := fam.Name
		if k != "" {
			label += "{" + string(k) + "}"
		}
		for i := 1; i < len(st.bounds); i++ {
			if st.bounds[i] <= st.bounds[i-1] {
				return fmt.Errorf("prom: %s: bucket bounds not increasing (%g after %g)", label, st.bounds[i], st.bounds[i-1])
			}
			if st.counts[i] < st.counts[i-1] {
				return fmt.Errorf("prom: %s: cumulative bucket counts decrease at le=%g", label, st.bounds[i])
			}
		}
		if st.inf == nil {
			return fmt.Errorf("prom: %s: no +Inf bucket", label)
		}
		if st.count == nil {
			return fmt.Errorf("prom: %s: no _count sample", label)
		}
		if *st.inf != *st.count {
			return fmt.Errorf("prom: %s: +Inf bucket %g != count %g", label, *st.inf, *st.count)
		}
		if n := len(st.counts); n > 0 && st.counts[n-1] > *st.inf {
			return fmt.Errorf("prom: %s: finite bucket exceeds +Inf", label)
		}
	}
	return nil
}

package metrics

import (
	"bytes"
	"testing"
)

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Add("rule/FindView2", 3)
	r.Add("rule/FindView2", 2)
	r.Add("rule/Inflate1", 1)
	r.Observe("worklist", 0)
	r.Observe("worklist", 1)
	r.Observe("worklist", 5)
	r.Observe("worklist", 5)

	if got := r.Counter("rule/FindView2").Value(); got != 5 {
		t.Errorf("FindView2 counter = %d, want 5", got)
	}
	s := r.Snapshot()
	if s.Counters["rule/Inflate1"] != 1 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	h := s.Histograms["worklist"]
	if h.Count != 4 || h.Sum != 11 || h.Max != 5 {
		t.Errorf("histogram = %+v", h)
	}
	// 0 -> bucket [.,1), 1 -> [1,2), 5 -> [4,8) twice.
	want := [][2]int64{{1, 1}, {2, 1}, {8, 2}}
	if len(h.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", h.Buckets, want)
	}
	for i, b := range want {
		if h.Buckets[i] != b {
			t.Errorf("bucket %d = %v, want %v", i, h.Buckets[i], b)
		}
	}
}

// TestRegistryJSONDeterministic: equal registry states render to identical
// bytes (the property the -stats-json and trace exports rely on).
func TestRegistryJSONDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			r.Add(n, 1)
			r.Observe("h/"+n, 4)
		}
		return r
	}
	a, err := build([]string{"x", "y", "z"}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build([]string{"z", "x", "y"}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestRegistryNilSafe: the disabled path (nil registry, nil counter, nil
// histogram) must be a silent no-op and must not allocate.
func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if c := r.Counter("x"); c != nil {
		t.Errorf("nil registry Counter = %v", c)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add("x", 1)
		r.Observe("y", 2)
		r.Counter("x").Add(1)
		r.Histogram("y").Observe(3)
	})
	if allocs != 0 {
		t.Errorf("disabled registry allocates %v allocs/op, want 0", allocs)
	}
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if names := r.CounterNames(); names != nil {
		t.Errorf("nil CounterNames = %v", names)
	}
}

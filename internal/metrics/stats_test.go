package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestAppStats(t *testing.T) {
	var a AppStats
	a.App = "X"
	a.Add("load", 10*time.Millisecond)
	a.Add("analyze", 30*time.Millisecond)
	if got := a.StageWall("load"); got != 10*time.Millisecond {
		t.Errorf("StageWall(load) = %v", got)
	}
	if got := a.StageWall("missing"); got != 0 {
		t.Errorf("StageWall(missing) = %v", got)
	}
	if got := a.Total(); got != 40*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
}

func TestBatchStatsSummary(t *testing.T) {
	b := BatchStats{
		Workers: 4,
		Wall:    25 * time.Millisecond,
		Apps: []AppStats{
			{App: "A", Stages: []Stage{{"load", 10 * time.Millisecond}, {"analyze", 40 * time.Millisecond}}},
			{App: "B", Stages: []Stage{{"load", 20 * time.Millisecond}}, Err: "boom\nstack..."},
		},
	}
	if got := b.TotalWork(); got != 70*time.Millisecond {
		t.Errorf("TotalWork = %v", got)
	}
	if got := b.Speedup(); got < 2.7 || got > 2.9 {
		t.Errorf("Speedup = %.2f, want 2.8", got)
	}
	if got := b.Failed(); got != 1 {
		t.Errorf("Failed = %d", got)
	}

	s := FormatBatch(b)
	for _, want := range []string{"A", "B", "ERROR: boom", "2 apps, 4 workers", "speedup 2.80x"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "stack...") {
		t.Errorf("summary should keep only the first error line:\n%s", s)
	}
}

func TestSpeedupZeroWall(t *testing.T) {
	if got := (BatchStats{}).Speedup(); got != 0 {
		t.Errorf("Speedup = %v", got)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2 << 10: "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatPasses(t *testing.T) {
	out := FormatPasses([]PassStats{
		{Pass: "dangling-findview", Wall: 2 * time.Millisecond, Findings: 3},
		{Pass: "null-view-deref", Wall: 1 * time.Millisecond, Findings: 1},
	})
	for _, w := range []string{"dangling-findview", "null-view-deref", "total", "4"} {
		if !strings.Contains(out, w) {
			t.Errorf("FormatPasses missing %q:\n%s", w, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("want header + 2 rows + total, got %d lines:\n%s", lines, out)
	}
}

// TestStableJSON: the machine-readable rendering keeps only run-independent
// fields — identical batches serialize byte-identically even though their
// wall-clocks and allocation totals differ.
func TestStableJSON(t *testing.T) {
	mk := func(wall time.Duration, alloc uint64) BatchStats {
		return BatchStats{
			Workers:    4,
			Wall:       wall,
			AllocBytes: alloc,
			Apps: []AppStats{
				{App: "A", Stages: []Stage{{"load", wall}, {"analyze", wall * 2}}, Iterations: 3},
				{App: "B", Stages: []Stage{{"load", wall / 2}}, Err: "boom\ngoroutine 7 [running]: 0xc000123456"},
			},
		}
	}
	run1, err := mk(25*time.Millisecond, 1<<20).StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	run2, err := mk(99*time.Millisecond, 1<<30).StableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(run1) != string(run2) {
		t.Errorf("StableJSON varies with timing/allocation:\n%s\nvs\n%s", run1, run2)
	}

	s := string(run1)
	for _, want := range []string{
		`"workers": 4`, `"failed": 1`, `"app": "A"`, `"iterations": 3`,
		`"status": "error"`, `"error": "boom"`, `"stages"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("StableJSON missing %s:\n%s", want, s)
		}
	}
	for _, leak := range []string{"goroutine", "0xc000", "Wall", "alloc"} {
		if strings.Contains(s, leak) {
			t.Errorf("StableJSON leaks %q:\n%s", leak, s)
		}
	}
}

// Package metrics computes the measurements reported in Section 5 of the
// paper: Table 1 (application features and constraint graph node counts),
// Table 2 (analysis cost and average solution sizes per operation node), and
// the case-study precision comparison against the interpreter oracle.
package metrics

import (
	"fmt"
	"strings"
	"time"

	"gator/internal/core"
	"gator/internal/graph"
	"gator/internal/platform"
)

// Table1Row is one application's row of Table 1.
type Table1Row struct {
	App     string
	Classes int // application classes and interfaces
	Methods int // declared application methods (incl. constructors)

	LayoutIDs int // L: R.layout constants
	ViewIDs   int // V: R.id constants

	ViewsInflated  int // I: inflation-created view nodes
	ViewsAllocated int // A: allocation-site view nodes

	Listeners int // listener allocation nodes

	InflateOps     int // Inflate1 + Inflate2 operation nodes
	FindViewOps    int // FindView1 + FindView2 + FindView3 operation nodes
	AddViewOps     int // AddView1 + AddView2 operation nodes
	SetListenerOps int
	SetIdOps       int
}

// Table1 measures a solved analysis result.
func Table1(app string, res *core.Result) Table1Row {
	row := Table1Row{App: app}
	for _, c := range res.Prog.AppClasses() {
		row.Classes++
		row.Methods += len(c.Methods)
	}
	row.LayoutIDs = res.Prog.R.NumLayouts()
	row.ViewIDs = res.Prog.R.NumViewIDs()
	row.ViewsInflated = len(res.Graph.Infls())
	for _, a := range res.Graph.Allocs() {
		if a.IsView {
			row.ViewsAllocated++
		}
		if a.IsListener {
			row.Listeners++
		}
	}
	for _, op := range res.Graph.Ops() {
		switch op.Kind {
		case platform.OpInflate1, platform.OpInflate2:
			row.InflateOps++
		case platform.OpFindView1, platform.OpFindView2, platform.OpFindView3:
			row.FindViewOps++
		case platform.OpAddView1, platform.OpAddView2:
			row.AddViewOps++
		case platform.OpSetListener:
			row.SetListenerOps++
		case platform.OpSetId:
			row.SetIdOps++
		}
	}
	return row
}

// Table2Row is one application's row of Table 2.
type Table2Row struct {
	App  string
	Time time.Duration

	// AvgReceivers is the average number of view objects reaching the
	// receiver of view-receiver operations (FindView1/3, AddView2, SetId,
	// SetListener), over operations reached by at least one view.
	AvgReceivers float64
	// AvgParameters is the average number of views reaching an AddView
	// operation as the child parameter; NaN-free: HasAddView reports
	// whether any AddView operation was reached (the paper prints "-").
	AvgParameters float64
	HasAddView    bool
	// AvgResults is the average number of views output by find-view
	// operations (FindView1/2/3), over operations producing at least one.
	AvgResults float64
	// AvgListeners is the average number of listener values reaching the
	// listener argument of set-listener operations.
	AvgListeners float64
}

// Table2 measures the solution sizes of a solved result. The analysis time
// is supplied by the caller (measure around core.Analyze).
func Table2(app string, res *core.Result, elapsed time.Duration) Table2Row {
	row := Table2Row{App: app, Time: elapsed}

	recvSum, recvN := 0, 0
	parmSum, parmN := 0, 0
	resSum, resN := 0, 0
	lstSum, lstN := 0, 0

	countViews := func(vals []graph.Value) int {
		n := 0
		for _, v := range vals {
			if graph.IsViewValue(v) {
				n++
			}
		}
		return n
	}
	countListeners := func(vals []graph.Value) int {
		n := 0
		for _, v := range vals {
			if graph.IsListenerValue(v) {
				n++
			}
		}
		return n
	}

	for _, op := range res.Graph.Ops() {
		switch op.Kind {
		case platform.OpFindView1, platform.OpFindView3, platform.OpAddView2,
			platform.OpSetId, platform.OpSetListener:
			if n := countViews(res.OpReceivers(op)); n > 0 {
				recvSum += n
				recvN++
			}
		}
		switch op.Kind {
		case platform.OpAddView1, platform.OpAddView2:
			if n := countViews(res.OpArg(op, 0)); n > 0 {
				parmSum += n
				parmN++
			}
		case platform.OpSetListener:
			if n := countListeners(res.OpArg(op, 0)); n > 0 {
				lstSum += n
				lstN++
			}
		}
		switch op.Kind {
		case platform.OpFindView1, platform.OpFindView2, platform.OpFindView3:
			if n := countViews(res.OpResults(op)); n > 0 {
				resSum += n
				resN++
			}
		}
	}

	if recvN > 0 {
		row.AvgReceivers = float64(recvSum) / float64(recvN)
	}
	if parmN > 0 {
		row.AvgParameters = float64(parmSum) / float64(parmN)
		row.HasAddView = true
	}
	if resN > 0 {
		row.AvgResults = float64(resSum) / float64(resN)
	}
	if lstN > 0 {
		row.AvgListeners = float64(lstSum) / float64(lstN)
	}
	return row
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s %9s %11s %9s %9s %10s %9s %13s %7s\n",
		"App", "Classes", "Methods", "ids(L/V)", "views(I/A)", "listeners",
		"Inflate", "FindView", "AddView", "SetListener", "SetId")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %8d %4d/%-4d %5d/%-5d %9d %9d %10d %9d %13d %7d\n",
			r.App, r.Classes, r.Methods, r.LayoutIDs, r.ViewIDs,
			r.ViewsInflated, r.ViewsAllocated, r.Listeners,
			r.InflateOps, r.FindViewOps, r.AddViewOps, r.SetListenerOps, r.SetIdOps)
	}
	return b.String()
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %10s %11s %8s %10s\n",
		"App", "Time(s)", "receivers", "parameters", "results", "listeners")
	for _, r := range rows {
		parm := "-"
		if r.HasAddView {
			parm = fmt.Sprintf("%.2f", r.AvgParameters)
		}
		fmt.Fprintf(&b, "%-16s %9.2f %10.2f %11s %8.2f %10.2f\n",
			r.App, r.Time.Seconds(), r.AvgReceivers, parm, r.AvgResults, r.AvgListeners)
	}
	return b.String()
}

// PrecisionRow is one application's row of the Section 5 case study:
// soundness and exactness of the static solution against the interpreter
// oracle.
type PrecisionRow struct {
	App           string
	ObservedSites int
	PerfectSites  int
	Violations    int
	Steps         int
	// Ratio is the canonical static-solution size over the oracle's
	// observed-fact count: 1.00 is an exact solution, larger is a looser
	// over-approximation. Zero when the oracle observed nothing.
	Ratio float64
}

// FormatPrecision renders case-study rows.
func FormatPrecision(rows []PrecisionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %11s %10s %7s\n", "App", "sites", "perfect", "violations", "steps", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9d %9d %11d %10d %7.2f\n",
			r.App, r.ObservedSites, r.PerfectSites, r.Violations, r.Steps, r.Ratio)
	}
	return b.String()
}

package metrics

// Batch-analysis instrumentation: per-application, per-stage wall-clock
// accounting and batch-level throughput summaries. The batch engine in the
// root package fills these in; the CLIs render them next to the paper's
// tables so the cost of scaling beyond the paper's one-app-at-a-time
// evaluation is measured, not guessed.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Stage is one timed pipeline stage of a single application's analysis
// (e.g. "load" = parse + resolve + lower, "analyze" = graph construction +
// fixpoint).
type Stage struct {
	Name string
	Wall time.Duration
}

// AppStats is the per-stage accounting for one application in a batch.
type AppStats struct {
	App    string
	Stages []Stage
	// Iterations is the solver's fixpoint round count (0 when the app never
	// reached the analyze stage).
	Iterations int
	// Err is the application's failure, "" on success. A failed app still
	// carries the stages that completed before the failure.
	Err string
}

// Add appends one timed stage.
func (a *AppStats) Add(name string, wall time.Duration) {
	a.Stages = append(a.Stages, Stage{Name: name, Wall: wall})
}

// StageWall returns the wall-clock of a named stage (0 when absent).
func (a AppStats) StageWall(name string) time.Duration {
	for _, s := range a.Stages {
		if s.Name == name {
			return s.Wall
		}
	}
	return 0
}

// Total is the summed wall-clock across the application's stages.
func (a AppStats) Total() time.Duration {
	var t time.Duration
	for _, s := range a.Stages {
		t += s.Wall
	}
	return t
}

// PassStats is the wall-clock and yield of one diagnostics pass over one
// application. The analysis driver fills these in; `gator -checks -stats`
// renders them.
type PassStats struct {
	Pass     string
	Wall     time.Duration
	Findings int
}

// FormatPasses renders per-pass timings, one line per pass plus a total.
func FormatPasses(ps []PassStats) string {
	var out strings.Builder
	fmt.Fprintf(&out, "%-32s %10s %9s\n", "Pass", "wall", "findings")
	var wall time.Duration
	total := 0
	for _, p := range ps {
		fmt.Fprintf(&out, "%-32s %10s %9d\n", p.Pass, round(p.Wall), p.Findings)
		wall += p.Wall
		total += p.Findings
	}
	fmt.Fprintf(&out, "%-32s %10s %9d\n", "total", round(wall), total)
	return out.String()
}

// BatchStats summarizes one batch run.
type BatchStats struct {
	// Workers is the resolved worker-pool size.
	Workers int
	// Wall is the end-to-end batch wall-clock.
	Wall time.Duration
	// AllocBytes is the heap allocated during the batch, summed over all
	// workers (from runtime.MemStats.TotalAlloc; includes any concurrent
	// allocation elsewhere in the process).
	AllocBytes uint64
	// Apps holds the per-application accounting, in input order.
	Apps []AppStats
}

// TotalWork sums the per-application stage wall-clocks: the time a
// single-worker run would need, modulo scheduling. Per-app walls include
// time spent descheduled, so when workers exceed available cores TotalWork
// (and therefore Speedup) overstates the realized parallelism; compare
// BenchmarkBatch/j1 vs /jN wall-clocks for an honest number.
func (b BatchStats) TotalWork() time.Duration {
	var t time.Duration
	for _, a := range b.Apps {
		t += a.Total()
	}
	return t
}

// Speedup is TotalWork / Wall — the effective parallelism of the run.
func (b BatchStats) Speedup() float64 {
	if b.Wall <= 0 {
		return 0
	}
	return float64(b.TotalWork()) / float64(b.Wall)
}

// Failed counts applications that ended in error.
func (b BatchStats) Failed() int {
	n := 0
	for _, a := range b.Apps {
		if a.Err != "" {
			n++
		}
	}
	return n
}

// FormatBatch renders a batch summary: one line per application with its
// stage breakdown, then the totals line.
func FormatBatch(b BatchStats) string {
	var out strings.Builder
	fmt.Fprintf(&out, "%-16s %10s %10s %10s  %s\n", "App", "load", "analyze", "total", "status")
	for _, a := range b.Apps {
		status := "ok"
		if a.Err != "" {
			status = "ERROR: " + firstLine(a.Err)
		}
		fmt.Fprintf(&out, "%-16s %10s %10s %10s  %s\n",
			a.App, round(a.StageWall("load")), round(a.StageWall("analyze")), round(a.Total()), status)
	}
	fmt.Fprintf(&out, "batch: %d apps, %d workers, wall %s, work %s, speedup %.2fx, %s allocated\n",
		len(b.Apps), b.Workers, round(b.Wall), round(b.TotalWork()), b.Speedup(), fmtBytes(b.AllocBytes))
	return out.String()
}

// stableApp and stableBatch are the StableJSON shapes. They carry only
// run-independent fields: no wall-clock, no allocation totals.
type stableApp struct {
	App        string   `json:"app"`
	Stages     []string `json:"stages"`
	Iterations int      `json:"iterations"`
	Status     string   `json:"status"`
	Error      string   `json:"error,omitempty"`
}

type stableBatch struct {
	Workers int         `json:"workers"`
	Failed  int         `json:"failed"`
	Apps    []stableApp `json:"apps"`
}

// StableJSON renders the batch accounting as machine-readable JSON that is
// byte-identical across repeated runs of the same batch: app names in input
// order, stage names, solver iteration counts, and statuses — but no timing
// or allocation figures, which vary run to run (those stay in FormatBatch,
// the human -stats rendering).
func (b BatchStats) StableJSON() ([]byte, error) {
	out := stableBatch{Workers: b.Workers, Failed: b.Failed(), Apps: []stableApp{}}
	for _, a := range b.Apps {
		sa := stableApp{App: a.App, Stages: []string{}, Iterations: a.Iterations, Status: "ok"}
		for _, s := range a.Stages {
			sa.Stages = append(sa.Stages, s.Name)
		}
		if a.Err != "" {
			sa.Status = "error"
			// Only the first line: panic messages carry a stack trace whose
			// addresses vary run to run.
			sa.Error = firstLine(a.Err)
		}
		out.Apps = append(out.Apps, sa)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// promTestRegistry builds a registry with one of everything the exposition
// has to handle: plain and labeled counters, gauges, a callback gauge, and
// plain and labeled histograms.
func promTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Add("server.jobs.admitted", 7)
	reg.Add(LabelName("http_requests_total", "route", "/v1/analyze", "status", "200"), 5)
	reg.Add(LabelName("http_requests_total", "route", "/v1/analyze", "status", "429"), 1)
	reg.Add(LabelName("requests_rejected_total", "reason", "draining"), 2)
	reg.SetGauge("sessions.active", 3)
	reg.GaugeFunc("jobs.queue_depth", func() int64 { return 4 })
	for _, v := range []int64{0, 1, 3, 9, 100} {
		reg.Observe("solver/worklist", v)
	}
	reg.Observe(LabelName("stage_duration_us", "stage", "solve"), 900)
	reg.Observe(LabelName("stage_duration_us", "stage", "queue"), 2)
	return reg
}

const promGolden = `# HELP gatord_http_requests_total http_requests_total
# TYPE gatord_http_requests_total counter
gatord_http_requests_total{route="/v1/analyze",status="200"} 5
gatord_http_requests_total{route="/v1/analyze",status="429"} 1
# HELP gatord_jobs_queue_depth jobs.queue_depth
# TYPE gatord_jobs_queue_depth gauge
gatord_jobs_queue_depth 4
# HELP gatord_requests_rejected_total requests_rejected_total
# TYPE gatord_requests_rejected_total counter
gatord_requests_rejected_total{reason="draining"} 2
# HELP gatord_server_jobs_admitted_total server.jobs.admitted
# TYPE gatord_server_jobs_admitted_total counter
gatord_server_jobs_admitted_total 7
# HELP gatord_sessions_active sessions.active
# TYPE gatord_sessions_active gauge
gatord_sessions_active 3
# HELP gatord_solver_worklist solver/worklist
# TYPE gatord_solver_worklist histogram
gatord_solver_worklist_bucket{le="0"} 1
gatord_solver_worklist_bucket{le="1"} 2
gatord_solver_worklist_bucket{le="3"} 3
gatord_solver_worklist_bucket{le="15"} 4
gatord_solver_worklist_bucket{le="127"} 5
gatord_solver_worklist_bucket{le="+Inf"} 5
gatord_solver_worklist_sum 113
gatord_solver_worklist_count 5
# HELP gatord_stage_duration_us stage_duration_us
# TYPE gatord_stage_duration_us histogram
gatord_stage_duration_us_bucket{stage="queue",le="3"} 1
gatord_stage_duration_us_bucket{stage="queue",le="+Inf"} 1
gatord_stage_duration_us_sum{stage="queue"} 2
gatord_stage_duration_us_count{stage="queue"} 1
gatord_stage_duration_us_bucket{stage="solve",le="1023"} 1
gatord_stage_duration_us_bucket{stage="solve",le="+Inf"} 1
gatord_stage_duration_us_sum{stage="solve"} 900
gatord_stage_duration_us_count{stage="solve"} 1
`

// TestPrometheusGolden locks the exposition byte-for-byte: HELP/TYPE
// lines, sanitized names, _total suffixing, stable label ordering, and the
// exact cumulative le bounds of the power-of-two histogram.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promTestRegistry().Snapshot(), "gatord"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != promGolden {
		t.Fatalf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), promGolden)
	}
}

// TestPrometheusParserAcceptsOwnOutput round-trips the renderer through
// the parser and spot-checks parsed families and values.
func TestPrometheusParserAcceptsOwnOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promTestRegistry().Snapshot(), "gatord"); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("parser rejected renderer output: %v\n%s", err, buf.String())
	}
	ctr, ok := fams["gatord_http_requests_total"]
	if !ok || ctr.Type != "counter" {
		t.Fatalf("http_requests_total family missing or mistyped: %+v", ctr)
	}
	if len(ctr.Samples) != 2 || ctr.Samples[0].Labels["status"] != "200" || ctr.Samples[0].Value != 5 {
		t.Fatalf("labeled counter samples wrong: %+v", ctr.Samples)
	}
	hist, ok := fams["gatord_solver_worklist"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("worklist histogram missing: %+v", hist)
	}
	gauge, ok := fams["gatord_jobs_queue_depth"]
	if !ok || gauge.Type != "gauge" || gauge.Samples[0].Value != 4 {
		t.Fatalf("callback gauge wrong: %+v", gauge)
	}
}

// TestPrometheusParserRejects feeds the parser the malformed expositions a
// broken renderer could produce.
func TestPrometheusParserRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":    "foo_total 3\n# TYPE foo_total counter\n",
		"bad value":             "# TYPE x gauge\nx abc\n",
		"bad metric name":       "# TYPE 9x gauge\n9x 1\n",
		"unterminated labels":   "# TYPE x counter\nx{a=\"b 1\n",
		"duplicate TYPE":        "# TYPE x gauge\n# TYPE x gauge\nx 1\n",
		"duplicate label":       "# TYPE x counter\nx{a=\"1\",a=\"2\"} 1\n",
		"unknown type":          "# TYPE x widget\nx 1\n",
		"histogram no inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram decreasing":  "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram inf!=count":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"histogram unsorted le": "# TYPE h histogram\nh_bucket{le=\"4\"} 1\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, in := range cases {
		if _, err := ParsePrometheus([]byte(in)); err == nil {
			t.Errorf("%s: parser accepted:\n%s", name, in)
		}
	}
	// Braces inside quoted label values do not end the label block.
	braced := "# TYPE x counter\nx{route=\"/v1/sessions/{id}\"} 1\n"
	fams, err := ParsePrometheus([]byte(braced))
	if err != nil {
		t.Errorf("braced label value rejected: %v", err)
	} else if fams["x"].Samples[0].Labels["route"] != "/v1/sessions/{id}" {
		t.Errorf("braced label value parsed as %q", fams["x"].Samples[0].Labels["route"])
	}
	// A valid histogram with labels parses.
	good := "# TYPE h histogram\n" +
		"h_bucket{stage=\"a\",le=\"1\"} 1\nh_bucket{stage=\"a\",le=\"+Inf\"} 2\n" +
		"h_sum{stage=\"a\"} 5\nh_count{stage=\"a\"} 2\n"
	if _, err := ParsePrometheus([]byte(good)); err != nil {
		t.Errorf("valid labeled histogram rejected: %v", err)
	}
}

// TestPrometheusDeterministic: two renderings of the same state are
// byte-identical — the scrape-level determinism /metrics inherits.
func TestPrometheusDeterministic(t *testing.T) {
	reg := promTestRegistry()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, reg.Snapshot(), "gatord"); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, reg.Snapshot(), "gatord"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two scrapes with no traffic differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestLabelNameEscaping: label values with quotes, backslashes, and
// newlines survive a render/parse round trip.
func TestLabelNameEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Add(LabelName("odd_total", "path", `a"b\c`+"\n"), 1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot(), "g"); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("escaped label rejected: %v\n%s", err, buf.String())
	}
	got := fams["g_odd_total"].Samples[0].Labels["path"]
	if got != `a"b\c`+"\n" {
		t.Fatalf("label value %q did not round-trip", got)
	}
}

func TestGaugeRegistry(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge value %d", g.Value())
	}
	if reg.Gauge("depth") != g {
		t.Fatal("gauge not interned")
	}
	reg.GaugeFunc("depth", func() int64 { return 42 })
	if v := reg.Snapshot().Gauges["depth"]; v != 42 {
		t.Fatalf("callback did not win the snapshot: %d", v)
	}

	var nilReg *Registry
	nilReg.SetGauge("x", 1)
	nilReg.GaugeFunc("x", func() int64 { return 1 })
	if nilReg.Gauge("x") != nil {
		t.Fatal("nil registry returned a gauge")
	}
	if len(nilReg.Snapshot().Gauges) != 0 {
		t.Fatal("nil registry snapshot has gauges")
	}
	var nilGauge *Gauge
	nilGauge.Set(1)
	nilGauge.Add(1)
	if nilGauge.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
}

func TestPrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry().Snapshot(), "gatord"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry rendered %q", buf.String())
	}
	if _, err := ParsePrometheus(nil); err != nil {
		t.Fatalf("empty exposition rejected: %v", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"server.jobs.admitted": "server_jobs_admitted",
		"rule/FindView2":       "rule_FindView2",
		"cache/parse/hits":     "cache_parse_hits",
		"9lives":               "_9lives",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasPrefix(LabelName("f", "k", "v"), "f{") {
		t.Fatal("LabelName shape")
	}
}

package metrics

// Counter/histogram registries for the instrumentation layer (package
// trace). The registry is the aggregation side of tracing: events stream to
// a trace.Sink, while counters and histograms accumulate here and export as
// deterministic JSON (sorted names, integer values).
//
// Overhead contract: every method is safe on a nil receiver and does
// nothing there, without allocating. Code under instrumentation calls
// reg.Counter(...).Add(...) unconditionally; with a nil registry the whole
// chain is a couple of predictable branches.

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, live sessions).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value; no-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d; no-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v < 1),
// and the last bucket absorbs everything larger.
const histBuckets = 32

// Histogram accumulates an integer-valued distribution in power-of-two
// buckets — enough resolution for worklist sizes and iteration counts
// without per-observation allocation.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// Observe records one value; no-op on a nil receiver. Negative values
// count into bucket 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for b := v; b > 0 && i < histBuckets-1; b >>= 1 {
		i++
	}
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	// Buckets lists the non-empty power-of-two buckets as [upperBound,
	// count] pairs in increasing bound order.
	Buckets [][2]int64 `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		// Bucket i counts v in [2^(i-1), 2^i); its exclusive upper bound
		// is 2^i.
		s.Buckets = append(s.Buckets, [2]int64{int64(1) << i, n})
	}
	return s
}

// Registry is a named collection of counters and histograms. The zero value
// is not usable; construct with NewRegistry. A nil *Registry is a valid
// disabled registry: every lookup returns nil, and nil counters/histograms
// swallow updates.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	// gaugeFns are callback gauges sampled at snapshot time (queue depth,
	// live-session count — values owned by another subsystem).
	gaugeFns map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
	}
}

// Counter returns (creating on demand) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating on demand) the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge returns (creating on demand) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge evaluated at every snapshot. It
// replaces any earlier registration under the same name; fn must be safe
// to call from any goroutine. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Add increments a named counter: shorthand for Counter(name).Add(n).
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// Observe records a value into a named histogram.
func (r *Registry) Observe(name string, v int64) { r.Histogram(name).Observe(v) }

// SetGauge sets a named gauge: shorthand for Gauge(name).Set(v).
func (r *Registry) SetGauge(name string, v int64) { r.Gauge(name).Set(v) }

// RegistrySnapshot is the exported state of a registry.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports the registry's current state. Nil registries export
// empty maps. Callback gauges are sampled here; a static gauge and a
// callback under the same name resolve to the callback.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{Counters: map[string]int64{}, Histograms: map[string]HistogramSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	if len(r.gauges)+len(r.gaugeFns) > 0 {
		s.Gauges = map[string]int64{}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	r.mu.Unlock()
	// Callbacks run outside the registry lock: they may themselves take
	// locks (queue depth, session store) that must not nest under ours.
	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	return s
}

// JSON renders the registry deterministically: encoding/json emits map
// keys in sorted order, so equal states produce byte-identical output.
func (r *Registry) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package metrics

import (
	"strings"
	"testing"
	"time"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/ir"
	"gator/internal/layout"
)

func figure1Result(t *testing.T) *core.Result {
	t.Helper()
	p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(p, core.Options{})
}

func TestTable1Figure1(t *testing.T) {
	row := Table1("fig1", figure1Result(t))
	if row.Classes != 4 {
		t.Errorf("classes = %d, want 4", row.Classes)
	}
	if row.Methods != 7 {
		t.Errorf("methods = %d, want 7", row.Methods)
	}
	if row.LayoutIDs != 2 || row.ViewIDs != 4 {
		t.Errorf("ids = %d/%d", row.LayoutIDs, row.ViewIDs)
	}
	if row.ViewsInflated != 6 || row.ViewsAllocated != 1 {
		t.Errorf("views = %d/%d", row.ViewsInflated, row.ViewsAllocated)
	}
	if row.Listeners != 1 {
		t.Errorf("listeners = %d", row.Listeners)
	}
	if row.InflateOps != 2 || row.FindViewOps != 4 || row.AddViewOps != 2 ||
		row.SetListenerOps != 1 || row.SetIdOps != 1 {
		t.Errorf("ops = %+v", row)
	}
}

func TestTable2Figure1(t *testing.T) {
	row := Table2("fig1", figure1Result(t), 7*time.Millisecond)
	if row.Time != 7*time.Millisecond {
		t.Errorf("time = %v", row.Time)
	}
	if row.AvgReceivers < 1.0 || row.AvgReceivers > 3.0 {
		t.Errorf("receivers = %v", row.AvgReceivers)
	}
	if !row.HasAddView {
		t.Error("HasAddView = false")
	}
	if row.AvgListeners != 1.0 {
		t.Errorf("listeners = %v", row.AvgListeners)
	}
	if row.AvgResults < 1.0 {
		t.Errorf("results = %v", row.AvgResults)
	}
}

func TestTable2NoAddView(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.go);
	}
}`
	f, err := alite.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{
		"main": layout.MustParse("main", `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`),
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	row := Table2("t", core.Analyze(p, core.Options{}), 0)
	if row.HasAddView {
		t.Error("HasAddView = true for app without AddView ops")
	}
	out := FormatTable2([]Table2Row{row})
	if !strings.Contains(out, "-") {
		t.Errorf("formatted table missing '-':\n%s", out)
	}
}

func TestFormatting(t *testing.T) {
	t1 := FormatTable1([]Table1Row{Table1("fig1", figure1Result(t))})
	for _, want := range []string{"fig1", "Classes", "SetListener"} {
		if !strings.Contains(t1, want) {
			t.Errorf("table1 output missing %q:\n%s", want, t1)
		}
	}
	t2 := FormatTable2([]Table2Row{{App: "x", Time: time.Second, AvgReceivers: 1.5, HasAddView: true, AvgParameters: 2.0}})
	if !strings.Contains(t2, "1.50") || !strings.Contains(t2, "2.00") {
		t.Errorf("table2 output:\n%s", t2)
	}
	tp := FormatPrecision([]PrecisionRow{{App: "x", ObservedSites: 10, PerfectSites: 9, Violations: 0, Steps: 100}})
	if !strings.Contains(tp, "x") || !strings.Contains(tp, "10") {
		t.Errorf("precision output:\n%s", tp)
	}
}

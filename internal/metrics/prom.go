package metrics

// Prometheus text exposition (format 0.0.4) for a RegistrySnapshot — what
// gatord serves at /metrics so any standard scraper can consume the
// daemon's counters, gauges, and histograms (the bespoke JSON stays at
// /metrics.json). The rendering is deterministic: families sort by
// exposed name, series within a family sort by label string, and the
// power-of-two histograms export as the cumulative `le` buckets Prometheus
// expects, so two scrapes of an idle daemon are byte-identical (a property
// the renderer tests and the CI telemetry smoke both check via
// ParsePrometheus).

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// LabelName builds the registry name for a labeled series:
// family{k1="v1",k2="v2"} with the labels in the given order. Call sites
// must use one fixed label order per family so the exposition's label
// ordering is stable; values are escaped here.
func LabelName(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitName separates a registry name into its family and label part
// ("" when unlabeled). The label part keeps its braces.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// sanitizeMetricName maps an internal dotted/slashed name onto the
// Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeries is one rendered series of a family.
type promSeries struct {
	labels string // "{...}" or ""
	value  int64
	hist   *HistogramSnapshot
}

type promFamily struct {
	name   string // exposed name
	help   string // internal name, as documentation
	typ    string // counter | gauge | histogram
	series []promSeries
}

// WritePrometheus renders the snapshot in Prometheus text format. Every
// exposed name is prefixed with namespace + "_" (pass "gatord" in the
// daemon); counters gain a "_total" suffix unless the family already ends
// in it.
func WritePrometheus(w io.Writer, s RegistrySnapshot, namespace string) error {
	prefix := ""
	if namespace != "" {
		prefix = sanitizeMetricName(namespace) + "_"
	}
	fams := map[string]*promFamily{}
	addSeries := func(internal, typ string, value int64, hist *HistogramSnapshot) {
		family, labels := splitName(internal)
		name := prefix + sanitizeMetricName(family)
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, help: family, typ: typ}
			fams[name] = f
		}
		f.series = append(f.series, promSeries{labels: labels, value: value, hist: hist})
	}
	for internal, v := range s.Counters {
		addSeries(internal, "counter", v, nil)
	}
	for internal, v := range s.Gauges {
		addSeries(internal, "gauge", v, nil)
	}
	for internal, h := range s.Histograms {
		h := h
		addSeries(internal, "histogram", 0, &h)
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, sr := range f.series {
			if f.typ != "histogram" {
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sr.labels, sr.value)
				continue
			}
			writeHistogram(&b, f.name, sr.labels, sr.hist)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative le buckets from
// the power-of-two snapshot, then sum and count. A snapshot bucket bound
// is exclusive (the bucket holds v < bound) while Prometheus le is
// inclusive; observations are integers, so v < bound is exactly
// v <= bound-1 and the rendered le is bound-1 — cumulative counts are
// exact, not approximations. The top absorbing bucket has no finite bound
// and folds into +Inf.
func writeHistogram(b *strings.Builder, name, labels string, h *HistogramSnapshot) {
	const absorbBound = int64(1) << (histBuckets - 1)
	var cum int64
	for _, bk := range h.Buckets {
		bound, count := bk[0], bk[1]
		if bound >= absorbBound {
			break // the absorbing bucket is representable only as +Inf
		}
		cum += count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, fmt.Sprintf("%d", bound-1)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), h.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, labels, h.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count)
}

// bucketLabels appends the le label to an existing (possibly empty) label
// set, keeping le last.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Package report renders analysis results into the user-facing report
// surfaces. It is the single rendering path shared by the gator CLI and the
// gatord server: both hand a solved *gator.Result to Render, so a report
// served over HTTP is byte-identical to the same report printed locally —
// the contract the server's differential tests verify (see DESIGN.md,
// "Serving").
package report

import (
	"fmt"
	"io"
	"strings"

	"gator"
)

// Request selects one report surface.
type Request struct {
	// Report is the report kind (see Known); "" means "summary".
	Report string
	// Explain, when non-empty, renders derivation trees instead of Report:
	// "Class.method.var" for a variable's solution, "id:name" for a view id,
	// "order:Class.cb1.cb2" for a lifecycle-ordering justification.
	// The flow forms require the result to have been computed with
	// Options.Provenance; the order form is answered from the lifecycle
	// transition table alone.
	Explain string
	// Seed seeds the concrete interpreter for the "explore" report.
	Seed int64
	// Checks restricts the "checks" and "sarif" reports to the named check
	// IDs; empty runs all.
	Checks []string
}

// NeedsProvenance reports whether serving this request requires the
// solution to carry the provenance DAG.
func (r Request) NeedsProvenance() bool {
	return r.Explain != "" && !strings.HasPrefix(r.Explain, "order:")
}

// Kind returns the effective report kind ("" normalizes to "summary").
func (r Request) Kind() string {
	if r.Report == "" {
		return "summary"
	}
	return r.Report
}

// Kinds lists every report kind Render accepts, in presentation order.
func Kinds() []string {
	return []string{
		"summary", "views", "tuples", "hierarchy", "activities", "transitions",
		"menus", "check", "checks", "sarif", "table1", "table2", "dot", "ir",
		"json", "explore",
	}
}

// Known reports whether kind names a report Render accepts.
func Known(kind string) bool {
	for _, k := range Kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// Stable reports whether the kind renders byte-identically across repeated
// runs of the same input. Unstable reports carry wall-clock measurements
// and must not be served from content-addressed result caches.
func Stable(kind string) bool {
	switch kind {
	case "summary", "table2":
		return false
	}
	return kind != "json" // Model JSON embeds analysisTime
}

// Render writes one report for res to w, diagnostics to errw, and returns
// the exit code the report asks for: 0 ok, 1 report-level failure (warnings
// present, soundness violation, unknown explain target), 2 bad request
// (unknown report kind or malformed explain query).
func Render(w, errw io.Writer, name string, res *gator.Result, req Request) int {
	if req.Explain != "" {
		var trees []string
		var err error
		if strings.HasPrefix(req.Explain, "order:") {
			parts := strings.SplitN(strings.TrimPrefix(req.Explain, "order:"), ".", 3)
			if len(parts) != 3 {
				fmt.Fprintln(errw, "gator: -explain order: wants order:Class.cb1.cb2")
				return 2
			}
			tree, oerr := res.ExplainOrdering(parts[0], parts[1], parts[2])
			if oerr != nil {
				// API errors already carry the "gator: " prefix.
				fmt.Fprintln(errw, oerr)
				return 1
			}
			fmt.Fprint(w, tree)
			return 0
		}
		if strings.HasPrefix(req.Explain, "id:") {
			trees, err = res.ExplainViewID(strings.TrimPrefix(req.Explain, "id:"))
		} else {
			parts := strings.SplitN(req.Explain, ".", 3)
			if len(parts) != 3 {
				fmt.Fprintln(errw, "gator: -explain wants Class.method.var or id:name")
				return 2
			}
			trees, err = res.ExplainDerivation(parts[0], parts[1], parts[2])
		}
		if err != nil {
			// API errors already carry the "gator: " prefix.
			fmt.Fprintln(errw, err)
			return 1
		}
		for i, t := range trees {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprint(w, t)
		}
		return 0
	}

	switch req.Kind() {
	case "summary":
		t1 := res.Table1()
		fmt.Fprintf(w, "%s: %d classes, %d methods\n", name, t1.Classes, t1.Methods)
		fmt.Fprintf(w, "ids: %d layouts, %d view ids\n", t1.LayoutIDs, t1.ViewIDs)
		fmt.Fprintf(w, "views: %d inflated, %d allocated; %d listeners\n",
			t1.ViewsInflated, t1.ViewsAllocated, t1.Listeners)
		fmt.Fprintf(w, "ops: %d inflate, %d find-view, %d add-view, %d set-listener, %d set-id\n",
			t1.InflateOps, t1.FindViewOps, t1.AddViewOps, t1.SetListenerOps, t1.SetIdOps)
		fmt.Fprintf(w, "analysis: %v, %d fixpoint rounds\n", res.Elapsed(), res.Iterations())
	case "views":
		for _, v := range res.Views() {
			id := v.ID
			if id == "" {
				id = "-"
			}
			fmt.Fprintf(w, "%-20s %-28s id=%s\n", v.Class, v.Origin, id)
		}
	case "tuples":
		for _, t := range res.EventTuples() {
			act := t.Activity
			if act == "" {
				act = "-"
			}
			fmt.Fprintf(w, "activity=%-20s view=%s(%s) event=%-12s handler=%s\n",
				act, t.View.Class, t.View.Origin, t.Event, t.Handler)
		}
	case "hierarchy":
		for _, e := range res.Hierarchy() {
			fmt.Fprintf(w, "%s(%s) => %s(%s)\n", e.Parent.Class, e.Parent.Origin, e.Child.Class, e.Child.Origin)
		}
	case "activities":
		for _, a := range res.Activities() {
			fmt.Fprintf(w, "%s:\n", a.Activity)
			for _, r := range a.Roots {
				fmt.Fprintf(w, "\troot %s (%s)\n", r.Class, r.Origin)
			}
		}
	case "table1":
		fmt.Fprintf(w, "%+v\n", res.Table1())
	case "table2":
		r := res.Table2()
		fmt.Fprintf(w, "time=%v receivers=%.2f results=%.2f listeners=%.2f\n",
			r.Time, r.AvgReceivers, r.AvgResults, r.AvgListeners)
	case "check":
		fs := res.Check()
		warnings := 0
		for _, f := range fs {
			where := f.Pos
			if where == "" {
				where = name
			}
			fmt.Fprintf(w, "%s: %s: [%s] %s\n", where, f.Severity, f.Check, f.Msg)
			if f.Severity == "warning" {
				warnings++
			}
		}
		if warnings > 0 {
			return 1
		}
	case "checks":
		cr, err := res.CheckReport(req.Checks...)
		if err != nil {
			fmt.Fprintln(errw, "gator:", err)
			return 2
		}
		fmt.Fprint(w, cr.Text())
		if cr.Warnings() > 0 {
			return 1
		}
	case "sarif":
		cr, err := res.CheckReport(req.Checks...)
		if err != nil {
			fmt.Fprintln(errw, "gator:", err)
			return 2
		}
		data, err := cr.SARIF()
		if err != nil {
			fmt.Fprintln(errw, "gator:", err)
			return 1
		}
		w.Write(data)
		if cr.Warnings() > 0 {
			return 1
		}
	case "menus":
		for _, e := range res.MenuEntries() {
			fmt.Fprintf(w, "activity=%-20s item=%-16s handler=%s\n", e.Activity, e.ItemID, e.Handler)
		}
	case "transitions":
		for _, tr := range res.Transitions() {
			fmt.Fprintf(w, "%s -> %s  (via %s)\n", tr.Source, tr.Target, tr.Via)
		}
	case "json":
		data, err := res.Model().JSON()
		if err != nil {
			fmt.Fprintln(errw, "gator:", err)
			return 1
		}
		fmt.Fprintln(w, string(data))
	case "ir":
		fmt.Fprint(w, res.DumpIR())
	case "dot":
		fmt.Fprint(w, res.Dot())
	case "explore":
		rep := res.Explore(req.Seed)
		fmt.Fprintf(w, "sound=%v sites=%d perfect=%d steps=%d\n",
			rep.Sound, rep.ObservedSites, rep.PerfectSites, rep.Steps)
		for _, v := range rep.Violations {
			fmt.Fprintln(w, "violation:", v)
		}
		if !rep.Sound {
			return 1
		}
	default:
		fmt.Fprintf(errw, "gator: unknown report %q\n", req.Kind())
		return 2
	}
	return 0
}

// Package cluster is the scale-out tier over gatord: a consistent-hash
// ring mapping app ids onto replicas, a routing proxy (cmd/gatorproxy)
// that keeps warm incremental sessions sticky to the replica that owns
// them, a shared content-addressed result store served over HTTP, health
// probing with replica eviction and ring re-shard, and a cluster-wide
// Prometheus metrics rollup. The tier adds no analysis semantics: every
// byte a client receives through the proxy was rendered by one gatord
// replica, and every replica renders byte-identically to the local CLI
// (PR 5's contract), so proxy-routed output is byte-identical to
// single-node output — a property the differential test in this package
// verifies under -race. See DESIGN.md, "Cluster".
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per replica when the caller
// passes a non-positive value. 128 points per replica keeps the expected
// imbalance across a handful of replicas within a few percent of keys
// while ring rebuilds stay trivially cheap.
const DefaultVnodes = 128

// Ring is a consistent-hash ring: replicas project vnodes points each
// onto a 64-bit circle, and a key belongs to the replica owning the first
// point at or clockwise of the key's hash. Two properties make it the
// right routing structure for warm sessions:
//
//   - deterministic ownership: the same member set always yields the same
//     key→replica mapping, in any process, in any insertion order;
//   - minimal movement: adding or removing one replica of N reassigns
//     only the keys adjacent to that replica's points — about 1/N of the
//     key space — so a re-shard does not stampede the surviving replicas'
//     warm state (ring_test.go bounds the movement at 2/N).
//
// Ring is not synchronized; the proxy guards it with its own lock.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by (hash, replica)
}

type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing creates an empty ring with the given vnodes per replica (<= 0
// uses DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// hash64 maps a string onto the ring circle. sha256 rather than a cheap
// multiplicative hash: ring points are built once per membership change,
// key lookups are per-request but far off any hot path, and the uniform
// spread is what keeps replica shares balanced.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a replica's vnode points (a no-op for a present member).
func (r *Ring) Add(replica string) {
	if r.members[replica] {
		return
	}
	r.members[replica] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:    hash64(fmt.Sprintf("%s#%d", replica, i)),
			replica: replica,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
}

// Remove deletes a replica's points (a no-op for an absent member). Keys
// it owned fall through to the next point clockwise; everything else is
// untouched.
func (r *Ring) Remove(replica string) {
	if !r.members[replica] {
		return
	}
	delete(r.members, replica)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.replica != replica {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the replica owning key, false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].replica, true
}

// Members returns the replica names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

package cluster

import (
	"strings"
	"testing"

	"gator/internal/metrics"
)

func mustParse(t *testing.T, exposition string) map[string]*metrics.PromFamily {
	t.Helper()
	fams, err := metrics.ParsePrometheus([]byte(exposition))
	if err != nil {
		t.Fatalf("fixture exposition invalid: %v", err)
	}
	return fams
}

const replicaExposition = `# HELP gatord_requests_total requests
# TYPE gatord_requests_total counter
gatord_requests_total{route="analyze"} 7
# HELP gatord_latency_us latency
# TYPE gatord_latency_us histogram
gatord_latency_us_bucket{le="10"} 2
gatord_latency_us_bucket{le="+Inf"} 7
gatord_latency_us_sum 420
gatord_latency_us_count 7
`

// The rollup must re-parse cleanly with the same validating parser the
// smoke uses, with every sample carrying its replica label and histogram
// invariants intact per (replica) label set.
func TestRollupParsesAndLabels(t *testing.T) {
	scrapes := []replicaScrape{
		{replica: "r1", fams: mustParse(t, replicaExposition)},
		{replica: "r0", fams: mustParse(t, replicaExposition)},
	}
	out := renderRollup(scrapes)
	fams, err := metrics.ParsePrometheus([]byte(out))
	if err != nil {
		t.Fatalf("rollup does not re-parse: %v\n%s", err, out)
	}
	fam, ok := fams["gatord_requests_total"]
	if !ok {
		t.Fatalf("counter family missing from rollup:\n%s", out)
	}
	seen := map[string]bool{}
	for _, s := range fam.Samples {
		if s.Labels["route"] != "analyze" {
			t.Errorf("original label lost: %v", s.Labels)
		}
		seen[s.Labels["replica"]] = true
	}
	if !seen["r0"] || !seen["r1"] {
		t.Fatalf("replica labels missing: %v", seen)
	}
	if hist := fams["gatord_latency_us"]; hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family lost its type:\n%s", out)
	}
	// Deterministic: same scrapes (any input order) render the same bytes.
	again := renderRollup([]replicaScrape{
		{replica: "r0", fams: mustParse(t, replicaExposition)},
		{replica: "r1", fams: mustParse(t, replicaExposition)},
	})
	if again != out {
		t.Fatal("rollup output depends on scrape order")
	}
	if !strings.Contains(out, `gatord_requests_total{replica="r0",route="analyze"} 7`) {
		t.Fatalf("expected replica-labeled sample line in:\n%s", out)
	}
}

// A replica whose family TYPE disagrees (version skew mid-rollout) must
// not corrupt the family: the first replica's TYPE wins and the skewed
// samples are dropped.
func TestRollupDropsTypeConflicts(t *testing.T) {
	skewed := mustParse(t, `# TYPE gatord_requests_total gauge
gatord_requests_total 3
`)
	out := renderRollup([]replicaScrape{
		{replica: "r0", fams: mustParse(t, replicaExposition)},
		{replica: "r1", fams: skewed},
	})
	fams, err := metrics.ParsePrometheus([]byte(out))
	if err != nil {
		t.Fatalf("rollup does not re-parse: %v\n%s", err, out)
	}
	for _, s := range fams["gatord_requests_total"].Samples {
		if s.Labels["replica"] == "r1" {
			t.Fatalf("type-conflicting sample survived:\n%s", out)
		}
	}
}

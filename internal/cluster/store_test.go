package cluster

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// The shared tier must round-trip bytes exactly and reject anything that
// is not a content-addressed entry.
func TestSharedStoreRoundTrip(t *testing.T) {
	p := New(Config{})
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	sc := NewStoreClient(ts.URL)

	key := strings.Repeat("ab12", 8)
	if _, ok := sc.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	want := []byte("0rendered report bytes\n")
	sc.Put(key, want)
	got, ok := sc.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip corrupted bytes: %q != %q", got, want)
	}

	snap := p.Registry().Snapshot()
	if snap.Counters["proxy.shared.puts"] != 1 || snap.Counters["proxy.shared.hits"] != 1 {
		t.Fatalf("store counters wrong: %v", snap.Counters)
	}
}

func TestSharedStoreRejectsBadKeys(t *testing.T) {
	for _, key := range []string{
		"",                            // empty
		"short",                       // too short and not hex
		"ABCDEF0123456789",            // uppercase hex is not our format
		"../../../etc/passwd",         // traversal shapes must die at the door
		strings.Repeat("a", 129),      // oversized
		strings.Repeat("a", 15) + "g", // non-hex char
	} {
		if validStoreKey(key) {
			t.Errorf("validStoreKey(%q) = true, want false", key)
		}
	}
	if !validStoreKey(strings.Repeat("0f", 16)) {
		t.Error("a 32-char hex key must be valid")
	}
}

func TestSharedStoreBoundsEntries(t *testing.T) {
	p := New(Config{})
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	sc := NewStoreClient(ts.URL)
	key := strings.Repeat("cd34", 8)

	sc.Put(key, nil) // empty: dropped client-side
	if _, ok := sc.Get(key); ok {
		t.Fatal("empty put stored something")
	}
	sc.Put(key, make([]byte, maxSharedEntryBytes+1)) // oversized: dropped
	if _, ok := sc.Get(key); ok {
		t.Fatal("oversized put stored something")
	}
}

// A dead proxy must read as a miss, never an error — the shared tier is
// an optimization, and losing it degrades to local solving.
func TestStoreClientFailsOpen(t *testing.T) {
	ts := httptest.NewServer(nil)
	ts.Close() // connection refused from here on
	sc := NewStoreClient(ts.URL)
	if _, ok := sc.Get(strings.Repeat("ab12", 8)); ok {
		t.Fatal("dead proxy produced a hit")
	}
	sc.Put(strings.Repeat("ab12", 8), []byte("x")) // must not panic or block
}

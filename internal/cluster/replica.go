package cluster

// LocalReplica boots a real gatord replica — server.New behind a real
// loopback listener — inside the current process. The cluster smoke, the
// cluster benchmark, and the differential tests all build their clusters
// from these: the replicas serve actual HTTP through the actual proxy, so
// what they exercise is exactly what `gatord -replica` serves, minus the
// process boundary.

import (
	"net"
	"net/http"
	"sync"

	"gator/internal/server"
)

// LocalReplica is one in-process gatord replica.
type LocalReplica struct {
	// Name is the replica id (server.Config.ReplicaID).
	Name string
	// Srv is the underlying daemon, for direct inspection.
	Srv *server.Server

	ln   net.Listener
	hs   *http.Server
	once sync.Once
	done chan struct{}
}

// StartLocalReplica boots a replica named name on a fresh loopback port.
// cfg.ReplicaID is overwritten with name.
func StartLocalReplica(name string, cfg server.Config) (*LocalReplica, error) {
	cfg.ReplicaID = name
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lr := &LocalReplica{
		Name: name,
		Srv:  srv,
		ln:   ln,
		hs:   &http.Server{Handler: srv.Handler()},
		done: make(chan struct{}),
	}
	go func() {
		lr.hs.Serve(ln) // returns on Close; the error is the shutdown signal
		close(lr.done)
	}()
	return lr, nil
}

// Addr returns the replica's host:port.
func (lr *LocalReplica) Addr() string { return lr.ln.Addr().String() }

// URL returns the replica's base URL.
func (lr *LocalReplica) URL() string { return "http://" + lr.Addr() }

// Kill stops the replica abruptly — listener and all connections torn
// down, no drain — modeling a crashed box. In-flight requests fail on the
// wire, which is precisely what the proxy's failover path must absorb.
func (lr *LocalReplica) Kill() {
	lr.once.Do(func() {
		lr.hs.Close()
		<-lr.done
	})
}

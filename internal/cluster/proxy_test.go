package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gator/internal/metrics"
	"gator/internal/server"
)

// Readiness is a cluster property: a proxy with no live replicas can
// accept nothing, so /readyz must say so.
func TestProxyReadiness(t *testing.T) {
	tc := startCluster(t, 0, server.Config{})
	if err := tc.client.Readyz(); err == nil {
		t.Fatal("readyz passed with zero replicas")
	}
	if err := tc.client.Healthz(); err != nil {
		t.Fatalf("healthz must pass regardless: %v", err)
	}

	lr, err := StartLocalReplica("solo", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lr.Kill)
	tc.proxy.AddReplica("solo", lr.URL())
	if err := tc.client.Readyz(); err != nil {
		t.Fatalf("readyz failed with a live replica: %v", err)
	}
}

// The proxy must route each app to exactly the replica the ring names,
// proven by the replica id the response carries.
func TestProxyRoutesByRingOwner(t *testing.T) {
	tc := startCluster(t, 3, server.Config{})
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("app-%d", i)
		want, ok := tc.proxy.OwnerOf(name)
		if !ok {
			t.Fatal("ring empty")
		}
		resp, err := tc.client.Analyze(figure1Request(name, "views"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Output == "" {
			t.Fatalf("%s: empty report", name)
		}
		got := analyzeReplica(t, tc, name)
		if got != want {
			t.Errorf("app %q served by %s, ring owner is %s", name, got, want)
		}
	}
}

// analyzeReplica reads the X-Gator-Replica header off a raw analyze
// round trip (the Go client deliberately hides headers).
func analyzeReplica(t *testing.T, tc *testCluster, app string) string {
	t.Helper()
	body := `{"name":"` + app + `","sources":{"a.alite":"class A {}"}}`
	req, _ := http.NewRequest("POST", tc.ts.URL+"/v1/analyze", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.AppHeader, app)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze %s: status %d", app, resp.StatusCode)
	}
	return resp.Header.Get(server.ReplicaHeader)
}

// Sessions stay sticky: every patch lands on the replica that created the
// session, and the session survives other replicas dying.
func TestProxySessionStickiness(t *testing.T) {
	tc := startCluster(t, 3, server.Config{})
	open, err := tc.client.OpenSession(figure1Request("sticky", "views"))
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := tc.proxy.sessionReplica(open.SessionID)
	if !ok {
		t.Fatal("proxy did not record the session route")
	}
	// Kill both non-owners: if stickiness holds, patches still work.
	for _, lr := range tc.replicas {
		if lr.Name != owner.name {
			lr.Kill()
		}
	}
	for round := 0; round < 3; round++ {
		patch := server.PatchRequest{
			Sources:    map[string]string{"extra.alite": fmt.Sprintf("class Extra%d {}", round)},
			ReportSpec: server.ReportSpec{Report: "views"},
		}
		resp, err := tc.client.PatchSession(open.SessionID, patch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if resp.SessionID != open.SessionID {
			t.Fatalf("round %d: session id changed", round)
		}
	}
	if err := tc.client.CloseSession(open.SessionID); err != nil {
		t.Fatal(err)
	}
	// The delete must also clear the proxy's route table.
	if _, ok := tc.proxy.sessionReplica(open.SessionID); ok {
		t.Fatal("route survived session delete")
	}
}

// Killing a session's replica turns its session into a 404 — the exact
// signal the client's re-create path keys on — while stateless analyzes
// fail over transparently to a surviving replica.
func TestProxyFailover(t *testing.T) {
	tc := startCluster(t, 2, server.Config{})
	open, err := tc.client.OpenSession(figure1Request("doomed", "views"))
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := tc.proxy.sessionReplica(open.SessionID)
	if !ok {
		t.Fatal("no session route")
	}
	tc.byName(owner.name).Kill()

	// Session route: dead owner → 404, never a 5xx.
	_, err = tc.client.PatchSession(open.SessionID, server.PatchRequest{
		Sources:    map[string]string{"x.alite": "class X {}"},
		ReportSpec: server.ReportSpec{Report: "views"},
	})
	var se *server.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("patch after owner death: got %v, want 404", err)
	}

	// The client's recovery path: re-create, then patch the new session.
	reopened, err := tc.client.OpenSession(figure1Request("doomed", "views"))
	if err != nil {
		t.Fatalf("re-create after failover: %v", err)
	}
	if reopened.Output != open.Output {
		t.Fatal("re-created session rendered different bytes")
	}
	if _, err := tc.client.PatchSession(reopened.SessionID, server.PatchRequest{
		Sources:    map[string]string{"x.alite": "class X {}"},
		ReportSpec: server.ReportSpec{Report: "views"},
	}); err != nil {
		t.Fatalf("patch on re-created session: %v", err)
	}

	// Stateless requests for apps the dead replica owned retry silently.
	for i := 0; i < 6; i++ {
		if _, err := tc.client.Analyze(figure1Request(fmt.Sprintf("fo-%d", i), "views")); err != nil {
			t.Fatalf("analyze after failover: %v", err)
		}
	}
	if live := tc.proxy.LiveReplicas(); len(live) != 1 {
		t.Fatalf("dead replica still on the ring: %v", live)
	}
	snap := tc.proxy.Registry().Snapshot()
	if snap.Counters["proxy.replica.evictions"] == 0 {
		t.Fatal("eviction not counted")
	}
}

// The prober must evict a dead replica and re-add a recovered one.
func TestProbeEvictsAndRejoins(t *testing.T) {
	tc := startCluster(t, 2, server.Config{})
	victim := tc.replicas[0]
	victim.Kill()
	tc.proxy.ProbeOnce() // failure 1
	tc.proxy.ProbeOnce() // failure 2 → evict
	if live := tc.proxy.LiveReplicas(); len(live) != 1 || live[0] != tc.replicas[1].Name {
		t.Fatalf("prober did not evict: %v", live)
	}

	// "Recovery": a fresh replica process under the dead one's name.
	reborn, err := StartLocalReplica(victim.Name, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Kill)
	tc.proxy.AddReplica(victim.Name, reborn.URL())
	tc.proxy.ProbeOnce()
	if live := tc.proxy.LiveReplicas(); len(live) != 2 {
		t.Fatalf("recovered replica not back on the ring: %v", live)
	}
}

// One replica's solve must be every replica's replay: with the shared
// tier in place, re-analyzing an app on a different replica reports
// Cached without re-solving.
func TestSharedTierCrossReplicaHit(t *testing.T) {
	tc := startCluster(t, 2, server.Config{})
	req := figure1Request("shared-app", "views")
	first, err := tc.client.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first analyze claims cached")
	}
	// Ask the NON-owner directly (bypassing the proxy's routing): its own
	// caches are cold, so a hit proves it consulted the shared tier.
	ownerName, _ := tc.proxy.OwnerOf("shared-app")
	var other *LocalReplica
	for _, lr := range tc.replicas {
		if lr.Name != ownerName {
			other = lr
		}
	}
	direct := server.NewClient(other.URL())
	second, err := direct.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("cross-replica analyze missed the shared tier")
	}
	if second.Output != first.Output || second.ExitCode != first.ExitCode {
		t.Fatal("shared-tier replay differs from the original solve")
	}
	snap := other.Srv.Registry().Snapshot()
	if snap.Counters["server.cache.shared_hits"] != 1 {
		t.Fatalf("shared_hits = %d, want 1", snap.Counters["server.cache.shared_hits"])
	}
}

// The rolled-up /metrics must re-parse with the validating parser, carry
// a replica label on every replica sample, and include the proxy's own
// gatorproxy_ families.
func TestMetricsRollupEndToEnd(t *testing.T) {
	tc := startCluster(t, 2, server.Config{})
	for i := 0; i < 4; i++ {
		if _, err := tc.client.Analyze(figure1Request(fmt.Sprintf("m-%d", i), "views")); err != nil {
			t.Fatal(err)
		}
	}
	data, err := tc.client.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParsePrometheus(data)
	if err != nil {
		t.Fatalf("rollup invalid: %v\n%s", err, data)
	}
	reqFam := fams["gatord_server_analyze_requests_total"]
	if reqFam == nil {
		names := make([]string, 0, len(fams))
		for n := range fams {
			names = append(names, n)
		}
		t.Fatalf("no analyze-request family in rollup; families: %v", names)
	}
	var total float64
	for _, s := range reqFam.Samples {
		if s.Labels["replica"] == "" {
			t.Fatalf("replica sample without replica label: %v", s)
		}
		total += s.Value
	}
	if total != 4 {
		t.Fatalf("rollup lost requests: summed %v, want 4", total)
	}
	found := false
	for name := range fams {
		if strings.HasPrefix(name, "gatorproxy_") {
			found = true
		}
	}
	if !found {
		t.Fatal("proxy's own metrics missing from rollup")
	}
	up := fams["gatorproxy_replica_up"]
	if up == nil || len(up.Samples) != 2 {
		t.Fatalf("replica_up gauges wrong: %+v", up)
	}
}

// A client canceling its own request must never evict a healthy replica:
// the forward fails with context.Canceled, but that is the client's fault,
// and punishing the replica would drop every warm session route it owns.
func TestClientCancelDoesNotEvict(t *testing.T) {
	tc := startCluster(t, 2, server.Config{})
	open, err := tc.client.OpenSession(figure1Request("cancel-app", "views"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the forward even starts

	// Stateless path: the retry loop must not march the dead context
	// across the ring evicting everyone.
	body := `{"name":"cancel-app","sources":{"a.alite":"class A {}"}}`
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body)).WithContext(ctx)
	tc.proxy.Handler().ServeHTTP(httptest.NewRecorder(), req)

	// Session path: the sticky route must survive the abort.
	sreq := httptest.NewRequest("PATCH", "/v1/sessions/"+open.SessionID,
		strings.NewReader(`{"reportSpec":{"report":"views"}}`)).WithContext(ctx)
	tc.proxy.Handler().ServeHTTP(httptest.NewRecorder(), sreq)

	if live := tc.proxy.LiveReplicas(); len(live) != 2 {
		t.Fatalf("client abort evicted replicas: live=%v", live)
	}
	if _, ok := tc.proxy.sessionReplica(open.SessionID); !ok {
		t.Fatal("client abort wiped the session route")
	}
	snap := tc.proxy.Registry().Snapshot()
	if snap.Counters["proxy.replica.evictions"] != 0 {
		t.Fatalf("evictions = %d, want 0", snap.Counters["proxy.replica.evictions"])
	}
	if snap.Counters["proxy.client_aborts"] == 0 {
		t.Fatal("client aborts not counted")
	}
	// The replicas are genuinely fine: a normal request still works.
	if _, err := tc.client.Analyze(figure1Request("cancel-app", "views")); err != nil {
		t.Fatalf("analyze after client abort: %v", err)
	}
}

// A failed body read (client aborting its upload) is not a size violation:
// it must answer 400, reserving 413 for genuinely over-limit bodies.
func TestBodyReadErrorIsNot413(t *testing.T) {
	// Both rejections happen before any forward, so no replicas needed.
	p := New(Config{MaxRequestBytes: 1 << 20})
	req := httptest.NewRequest("POST", "/v1/analyze", errReader{})
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("read failure answered %d, want 400", rec.Code)
	}

	over := strings.NewReader(strings.Repeat("x", 1<<20+1))
	req = httptest.NewRequest("POST", "/v1/analyze", over)
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit body answered %d, want 413", rec.Code)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("client hung up mid-upload") }

// The session-table bound counts LIVE routes: ids already deleted via
// dropSession must not push live routes out, and the FIFO must not grow
// without bound under churn.
func TestSessionTableTrimSkipsDeadRoutes(t *testing.T) {
	p := New(Config{MaxSessionRoutes: 4})
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("dead-%d", i)
		p.recordSession(id, "r0")
		p.dropSession(id)
	}
	for i := 0; i < 4; i++ {
		p.recordSession(fmt.Sprintf("live-%d", i), "r0")
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("live-%d", i)
		p.mu.Lock()
		_, ok := p.sessions[id]
		p.mu.Unlock()
		if !ok {
			t.Fatalf("%s evicted while the table held only %d live routes", id, 4)
		}
	}
	// The bound still bites: a fifth live route evicts the oldest live one.
	p.recordSession("live-4", "r0")
	p.mu.Lock()
	_, oldestAlive := p.sessions["live-0"]
	total := len(p.sessions)
	fifoLen := len(p.sessFIFO)
	p.mu.Unlock()
	if oldestAlive {
		t.Fatal("over-bound insert did not evict the oldest live route")
	}
	if total != 4 {
		t.Fatalf("table holds %d routes, want 4", total)
	}
	if fifoLen > 2*4+64 {
		t.Fatalf("FIFO grew to %d entries under churn; dead ids are not being compacted", fifoLen)
	}
}

// Re-registering a replica at a new address while probes are in flight
// must be race-free (replicaState instances are immutable per address) and
// must converge on the latest address.
func TestReRegisterDuringProbes(t *testing.T) {
	tc := startCluster(t, 2, server.Config{})
	name := tc.replicas[0].Name
	addrA, addrB := tc.replicas[0].URL(), tc.replicas[1].URL()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			tc.proxy.AddReplica(name, addrA)
			tc.proxy.AddReplica(name, addrB)
		}
	}()
	for i := 0; i < 10; i++ {
		tc.proxy.ProbeOnce()
	}
	<-done
	tc.proxy.AddReplica(name, addrA)
	tc.proxy.ProbeOnce()
	if live := tc.proxy.LiveReplicas(); len(live) != 2 {
		t.Fatalf("replicas lost across re-registration: %v", live)
	}
	if _, err := tc.client.Analyze(figure1Request("reregister", "views")); err != nil {
		t.Fatalf("analyze after re-registration churn: %v", err)
	}
}

// An unknown path must answer with the daemon's JSON error shape.
func TestProxyUnknownRoute(t *testing.T) {
	tc := startCluster(t, 1, server.Config{})
	resp, err := http.Get(tc.ts.URL + "/v1/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content type %q", ct)
	}
}

package cluster

// The shared content-addressed result tier: gatorproxy serves a
// byte-LRU'd key/value store over HTTP, and every replica consults it —
// through StoreClient, plugged into server.Config.Shared — after its own
// memory and disk tiers miss. Keys are cache.AppFingerprint values
// (content hashes + options CacheTag), so entries never go stale and a
// hit on any node is a hit for the whole cluster: one replica's solve
// becomes every replica's replay. The client fails open on any transport
// problem — a degraded shared tier costs re-solves, never availability.

import (
	"io"
	"net/http"
	"strings"
	"time"

	"gator/internal/cache"
	"gator/internal/metrics"
)

// maxSharedEntryBytes bounds one shared-store entry on both sides of the
// wire: rendered reports are KBs, so anything past this is a bug or abuse,
// not a cache entry worth shipping.
const maxSharedEntryBytes = 8 << 20

// validStoreKey rejects keys that are not hex fingerprints — the store is
// content-addressed, so arbitrary names have no business in it.
func validStoreKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// storeHandler serves the shared tier on the proxy's mux:
//
//	GET /v1/cache/{key} -> 200 + bytes, or 404
//	PUT /v1/cache/{key} -> 204
type storeHandler struct {
	store *cache.ResultCache
	reg   *metrics.Registry
}

func (h *storeHandler) get(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validStoreKey(key) {
		http.Error(w, "invalid cache key", http.StatusBadRequest)
		return
	}
	data, ok := h.store.Get(key)
	if !ok {
		h.reg.Add("proxy.shared.misses", 1)
		http.Error(w, "no entry", http.StatusNotFound)
		return
	}
	h.reg.Add("proxy.shared.hits", 1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (h *storeHandler) put(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validStoreKey(key) {
		http.Error(w, "invalid cache key", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSharedEntryBytes+1))
	if err != nil || len(data) == 0 || len(data) > maxSharedEntryBytes {
		http.Error(w, "bad entry body", http.StatusBadRequest)
		return
	}
	h.store.Put(key, data)
	h.reg.Add("proxy.shared.puts", 1)
	w.WriteHeader(http.StatusNoContent)
}

// StoreClient implements cache.SharedStore over the proxy's HTTP cache
// endpoints. Every failure mode — connection refused, timeout, non-200 —
// degrades to a miss (Get) or a dropped write (Put).
type StoreClient struct {
	base string
	http *http.Client
}

var _ cache.SharedStore = (*StoreClient)(nil)

// NewStoreClient creates a shared-store client for the proxy at base
// (scheme optional, as with server.NewClient). The short timeout keeps a
// wedged shared tier from stalling the solve path it exists to shortcut.
func NewStoreClient(base string) *StoreClient {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &StoreClient{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 2 * time.Second},
	}
}

// Get fetches one entry; any error is a miss.
func (c *StoreClient) Get(key string) ([]byte, bool) {
	resp, err := c.http.Get(c.base + "/v1/cache/" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSharedEntryBytes+1))
	if err != nil || len(data) == 0 || len(data) > maxSharedEntryBytes {
		return nil, false
	}
	return data, true
}

// Put stores one entry, best-effort.
func (c *StoreClient) Put(key string, data []byte) {
	if len(data) == 0 || len(data) > maxSharedEntryBytes {
		return
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/cache/"+key, strings.NewReader(string(data)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

package cluster

// The routing tier. One Proxy fronts N gatord replicas:
//
//   - stateless work (/v1/analyze, /v1/batch, POST /v1/sessions) routes by
//     consistent hashing on the app id — the client's X-Gator-App header
//     when present, else the request body's "name" — so repeated requests
//     for one app land on the replica whose local caches are warm;
//   - session work (/v1/sessions/{id}) routes by a sticky session table
//     populated when the create response passes through the proxy. The
//     table IS the stickiness: a session lives on exactly the replica that
//     created it, and the ring only decides where creates go;
//   - a replica that fails its health probe, or a forward that dies on the
//     wire, evicts the replica from the ring (re-shard: only its keys
//     move) — unless the forward died because the CLIENT canceled, which
//     says nothing about replica health and must not shrink the ring.
//     Stateless requests retry transparently on the next owner;
//     session requests answer 404, which is the truth — the warm state is
//     gone — and the client's existing 404 → re-create path (PR 5) pays
//     one cold solve on a surviving replica. Recovery is symmetric: a
//     probe success re-adds the replica and its keys flow back.
//
// The proxy never parses, renders, or caches analysis output (the shared
// store holds replica-rendered bytes keyed by content), so the bytes a
// client sees are exactly one replica's bytes — byte-identical to a
// single-node daemon by PR 5's contract.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"log/slog"

	"gator/internal/cache"
	"gator/internal/metrics"
	"gator/internal/server"
)

// maxMetricsScrapeBytes bounds one replica's /metrics exposition in the
// rollup; past it the scrape is treated as truncated and skipped.
const maxMetricsScrapeBytes = 8 << 20

// Config tunes the proxy; the zero value works for tests.
type Config struct {
	// Vnodes per replica on the ring (<= 0 uses DefaultVnodes).
	Vnodes int
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 1s).
	ProbeTimeout time.Duration
	// ScrapeTimeout bounds one per-replica /metrics scrape during a rollup
	// (default 5s — deliberately looser than ProbeTimeout so a replica
	// that is merely slow doesn't vanish from cluster-summed counters).
	ScrapeTimeout time.Duration
	// ProbeFailures is how many consecutive probe failures evict a
	// replica (default 2; forward failures evict immediately regardless).
	ProbeFailures int
	// SharedCacheBytes bounds the shared result store (default 256 MiB).
	SharedCacheBytes int64
	// MaxSessionRoutes bounds the sticky session table (default 65536;
	// past it the oldest routes are dropped, costing those clients a
	// 404 → re-create).
	MaxSessionRoutes int
	// MaxRequestBytes bounds buffered request bodies (default 64 MiB —
	// above the replicas' own 16 MiB limit so the replica's 413 is the
	// one clients see).
	MaxRequestBytes int64
	// Logger receives routing and eviction diagnostics (nil disables).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 5 * time.Second
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 2
	}
	if c.SharedCacheBytes <= 0 {
		c.SharedCacheBytes = 256 << 20
	}
	if c.MaxSessionRoutes <= 0 {
		c.MaxSessionRoutes = 65536
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	return c
}

// replicaState is one registered replica. name and base are immutable for
// the lifetime of the instance (AddReplica swaps in a fresh instance when a
// replica re-registers at a new address), so they are safe to read without
// holding Proxy.mu; up and probeErr are guarded by Proxy.mu.
type replicaState struct {
	name     string
	base     string // normalized base URL, no trailing slash
	up       bool
	probeErr int // consecutive probe failures
}

// Proxy is the cluster coordinator. Create with New, register replicas
// with AddReplica, serve Handler(), run RunProber in a goroutine.
type Proxy struct {
	cfg    Config
	reg    *metrics.Registry
	mux    *http.ServeMux
	fwd    *http.Client // forwarding client; job deadlines bound it server-side
	probe  *http.Client
	scrape *http.Client // metrics-rollup client; looser budget than probes
	store  *storeHandler
	log    *slog.Logger
	gauges map[string]bool // replica_up gauges already registered

	mu       sync.Mutex
	ring     *Ring
	replicas map[string]*replicaState
	sessions map[string]string // session id -> replica name
	sessFIFO []string          // insertion order, for the table bound
}

// New builds a proxy from cfg.
func New(cfg Config) *Proxy {
	cfg = cfg.withDefaults()
	p := &Proxy{
		cfg:      cfg,
		reg:      metrics.NewRegistry(),
		fwd:      &http.Client{},
		probe:    &http.Client{Timeout: cfg.ProbeTimeout},
		scrape:   &http.Client{Timeout: cfg.ScrapeTimeout},
		log:      cfg.Logger,
		gauges:   map[string]bool{},
		ring:     NewRing(cfg.Vnodes),
		replicas: map[string]*replicaState{},
		sessions: map[string]string{},
	}
	p.store = &storeHandler{store: cache.NewResultCache(cfg.SharedCacheBytes), reg: p.reg}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /readyz", p.handleReadyz)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.mux.HandleFunc("GET /v1/cache/{key}", p.store.get)
	p.mux.HandleFunc("PUT /v1/cache/{key}", p.store.put)
	p.mux.HandleFunc("/", p.handleRoute)
	return p
}

// Handler returns the proxy's HTTP handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Registry exposes the proxy's own metrics registry.
func (p *Proxy) Registry() *metrics.Registry { return p.reg }

// AddReplica registers (or re-registers) a replica under name. It joins
// the ring immediately; the prober will evict it if it turns out dead.
func (p *Proxy) AddReplica(name, base string) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	p.mu.Lock()
	rs, ok := p.replicas[name]
	if !ok {
		rs = &replicaState{name: name, base: base}
		p.replicas[name] = rs
	} else if rs.base != base {
		// base is immutable per instance (forwards read it lock-free), so a
		// re-register at a new address swaps in a fresh instance; in-flight
		// forwards finish against the old address and at worst retry.
		rs = &replicaState{name: name, base: base, up: rs.up, probeErr: rs.probeErr}
		p.replicas[name] = rs
	}
	if !rs.up {
		rs.up = true
		rs.probeErr = 0
		p.ring.Add(name)
	}
	if !p.gauges[name] {
		p.gauges[name] = true
		gaugeName := metrics.LabelName("replica_up", "replica", name)
		p.reg.GaugeFunc(gaugeName, func() int64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			if rs := p.replicas[name]; rs != nil && rs.up {
				return 1
			}
			return 0
		})
	}
	p.mu.Unlock()
}

// RemoveReplica unregisters a replica entirely (administrative removal,
// as opposed to health eviction, which keeps probing for recovery).
func (p *Proxy) RemoveReplica(name string) {
	p.mu.Lock()
	if rs, ok := p.replicas[name]; ok {
		if rs.up {
			p.ring.Remove(name)
		}
		delete(p.replicas, name)
		p.dropSessionsLocked(name)
	}
	p.mu.Unlock()
}

// LiveReplicas returns the names of replicas currently on the ring.
func (p *Proxy) LiveReplicas() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.Members()
}

// OwnerOf reports which live replica the ring assigns an app id to.
func (p *Proxy) OwnerOf(app string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.Owner(app)
}

// markDown evicts a replica from the ring and forgets its sessions; those
// clients will see 404 and re-create on a surviving replica.
func (p *Proxy) markDown(name, why string) {
	p.mu.Lock()
	rs, ok := p.replicas[name]
	if !ok || !rs.up {
		p.mu.Unlock()
		return
	}
	rs.up = false
	p.ring.Remove(name)
	dropped := p.dropSessionsLocked(name)
	p.mu.Unlock()
	p.reg.Add("proxy.replica.evictions", 1)
	if p.log != nil {
		p.log.Warn("replica evicted",
			slog.String("replica", name),
			slog.String("reason", why),
			slog.Int("sessionsDropped", dropped))
	}
}

// markUp returns a recovered replica to the ring (re-shard: its keys flow
// back, everyone else's stay put).
func (p *Proxy) markUp(name string) {
	p.mu.Lock()
	rs, ok := p.replicas[name]
	changed := ok && !rs.up
	if changed {
		rs.up = true
		p.ring.Add(name)
	}
	if ok {
		rs.probeErr = 0
	}
	p.mu.Unlock()
	if changed {
		p.reg.Add("proxy.replica.rejoins", 1)
		if p.log != nil {
			p.log.Info("replica rejoined", slog.String("replica", name))
		}
	}
}

// dropSessionsLocked forgets every session routed to a replica.
func (p *Proxy) dropSessionsLocked(name string) int {
	n := 0
	for id, owner := range p.sessions {
		if owner == name {
			delete(p.sessions, id)
			n++
		}
	}
	return n
}

// recordSession remembers which replica owns a freshly created session,
// bounding the table FIFO-style.
func (p *Proxy) recordSession(id, replica string) {
	if id == "" {
		return
	}
	p.mu.Lock()
	if _, ok := p.sessions[id]; !ok {
		p.sessFIFO = append(p.sessFIFO, id)
	}
	p.sessions[id] = replica
	// The bound is on LIVE routes. Deletes (dropSession, replica eviction)
	// leave dead ids behind in the FIFO, so pop until the live count fits —
	// dead heads don't count as evictions.
	for len(p.sessions) > p.cfg.MaxSessionRoutes && len(p.sessFIFO) > 0 {
		old := p.sessFIFO[0]
		p.sessFIFO = p.sessFIFO[1:]
		delete(p.sessions, old)
	}
	// Keep FIFO memory proportional to the live table: churny deletes can
	// otherwise grow it without bound.
	if len(p.sessFIFO) > 2*len(p.sessions)+64 {
		live := p.sessFIFO[:0]
		for _, sid := range p.sessFIFO {
			if _, ok := p.sessions[sid]; ok {
				live = append(live, sid)
			}
		}
		p.sessFIFO = live
	}
	p.mu.Unlock()
	p.reg.Add("proxy.sessions.routed", 1)
}

// sessionReplica resolves a session id to its live owner.
func (p *Proxy) sessionReplica(id string) (*replicaState, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	name, ok := p.sessions[id]
	if !ok {
		return nil, false
	}
	rs, ok := p.replicas[name]
	if !ok || !rs.up {
		delete(p.sessions, id)
		return nil, false
	}
	return rs, true
}

func (p *Proxy) dropSession(id string) {
	p.mu.Lock()
	delete(p.sessions, id)
	p.mu.Unlock()
}

// replicaByName returns a live replica's state.
func (p *Proxy) replicaByName(name string) (*replicaState, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs, ok := p.replicas[name]
	if !ok || !rs.up {
		return nil, false
	}
	return rs, true
}

// ---- probing ----

// RunProber probes every registered replica each interval until stop
// closes, evicting after ProbeFailures consecutive failures and
// re-adding on the first success.
func (p *Proxy) RunProber(stop <-chan struct{}) {
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			p.ProbeOnce()
		}
	}
}

// ProbeOnce probes every registered replica once (exported so the smoke
// and tests can force a probe round instead of waiting out the ticker).
func (p *Proxy) ProbeOnce() {
	type probeTarget struct{ name, base string }
	p.mu.Lock()
	targets := make([]probeTarget, 0, len(p.replicas))
	for _, rs := range p.replicas {
		targets = append(targets, probeTarget{name: rs.name, base: rs.base})
	}
	p.mu.Unlock()
	for _, t := range targets {
		if p.probeReplica(t.base) {
			p.markUp(t.name)
			continue
		}
		// Re-resolve by name: the replica may have re-registered (fresh
		// state instance) or been removed while the probe was in flight.
		p.mu.Lock()
		rs, present := p.replicas[t.name]
		evict := false
		if present && rs.base == t.base {
			rs.probeErr++
			evict = rs.up && rs.probeErr >= p.cfg.ProbeFailures
		}
		p.mu.Unlock()
		if evict {
			p.markDown(t.name, "health probe failed")
		}
	}
}

func (p *Proxy) probeReplica(base string) bool {
	resp, err := p.probe.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---- proxy-local endpoints ----

func (p *Proxy) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: the proxy can serve work iff at least one replica is live.
func (p *Proxy) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(p.LiveReplicas()) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no live replicas")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the cluster rollup: every live replica's scrape
// with a replica label, then the proxy's own registry under gatorproxy_.
func (p *Proxy) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	targets := make([]replicaState, 0, len(p.replicas))
	for _, rs := range p.replicas {
		if rs.up {
			targets = append(targets, *rs)
		}
	}
	p.mu.Unlock()

	var scrapes []replicaScrape
	for _, rs := range targets {
		resp, err := p.scrape.Get(rs.base + "/metrics")
		if err != nil {
			p.reg.Add("proxy.rollup.scrape_errors", 1)
			continue
		}
		data, readErr := io.ReadAll(io.LimitReader(resp.Body, maxMetricsScrapeBytes))
		resp.Body.Close()
		if readErr != nil || resp.StatusCode != http.StatusOK {
			p.reg.Add("proxy.rollup.scrape_errors", 1)
			continue
		}
		fams, err := metrics.ParsePrometheus(data)
		if err != nil {
			// A replica emitting an invalid exposition must not poison the
			// rollup; count it and move on.
			p.reg.Add("proxy.rollup.parse_errors", 1)
			continue
		}
		scrapes = append(scrapes, replicaScrape{replica: rs.name, fams: fams})
	}

	var buf bytes.Buffer
	buf.WriteString(renderRollup(scrapes))
	if err := metrics.WritePrometheus(&buf, p.reg.Snapshot(), "gatorproxy"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// ---- request routing ----

// errorJSON mirrors the replicas' error body shape so clients see one
// wire format whether the proxy or a replica answered.
func errorJSON(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// appIDFromRequest extracts the routing key: the X-Gator-App header when
// the client set it (proxy-aware clients do), else the JSON body's "name"
// (first app's name for batches), else a fixed fallback key.
func appIDFromRequest(r *http.Request, body []byte) string {
	if app := r.Header.Get(server.AppHeader); app != "" {
		return app
	}
	var peek struct {
		Name string `json:"name"`
		Apps []struct {
			Name string `json:"name"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(body, &peek); err == nil {
		if peek.Name != "" {
			return peek.Name
		}
		if len(peek.Apps) > 0 && peek.Apps[0].Name != "" {
			return peek.Apps[0].Name
		}
	}
	return "app"
}

// hopHeaders are dropped when copying headers across the proxy.
var hopHeaders = map[string]bool{
	"Connection":        true,
	"Keep-Alive":        true,
	"Proxy-Connection":  true,
	"Te":                true,
	"Trailer":           true,
	"Transfer-Encoding": true,
	"Upgrade":           true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// handleRoute is the catch-all: session paths go to their sticky owner,
// everything else /v1/* routes by app id on the ring.
func (p *Proxy) handleRoute(w http.ResponseWriter, r *http.Request) {
	p.reg.Add("proxy.requests", 1)
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/sessions/"):
		p.routeSession(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/debug/traces/"):
		p.routeScan(w, r)
	case r.URL.Path == "/v1/analyze", r.URL.Path == "/v1/batch", r.URL.Path == "/v1/sessions":
		p.routeStateless(w, r)
	default:
		errorJSON(w, http.StatusNotFound, "gatorproxy: unknown route %s", r.URL.Path)
	}
}

// readRequestBody buffers the inbound body, answering the client and
// returning ok=false when the request can't be forwarded: 413 only for a
// genuinely over-limit body, 400 for a read failure (a client aborting its
// upload is not a size violation).
func (p *Proxy) readRequestBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, p.cfg.MaxRequestBytes+1))
	if err != nil {
		p.reg.Add("proxy.client_aborts", 1)
		errorJSON(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	if int64(len(body)) > p.cfg.MaxRequestBytes {
		errorJSON(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", p.cfg.MaxRequestBytes)
		return nil, false
	}
	return body, true
}

// routeStateless routes by app id with transparent failover: a forward
// that dies on the wire evicts the replica and retries on the ring's next
// owner — the request carries no server-side state, so the retry is safe.
func (p *Proxy) routeStateless(w http.ResponseWriter, r *http.Request) {
	body, ok := p.readRequestBody(w, r)
	if !ok {
		return
	}
	app := appIDFromRequest(r, body)
	tried := map[string]bool{}
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		owner, ok := p.ring.Owner(app)
		p.mu.Unlock()
		if !ok {
			errorJSON(w, http.StatusServiceUnavailable, "no live replicas")
			return
		}
		if tried[owner] {
			// The ring cycled back to a replica that already failed this
			// request; nothing left to try.
			errorJSON(w, http.StatusBadGateway, "all replicas failed for app %q", app)
			return
		}
		tried[owner] = true
		rs, ok := p.replicaByName(owner)
		if !ok {
			continue
		}
		if attempt > 0 {
			p.reg.Add("proxy.retries", 1)
		}
		if p.forwardBuffered(w, r, rs, body) {
			return
		}
		if r.Context().Err() != nil {
			// The client hung up or timed out: the forward died because OUR
			// outbound context was canceled, not because the replica is sick.
			// Evicting here would let one impatient client wipe healthy
			// replicas (and their warm session routes) off the ring — and
			// retrying with the same dead context would cascade across every
			// replica. Drop the request; there is no one left to answer.
			p.reg.Add("proxy.client_aborts", 1)
			return
		}
		p.markDown(owner, "forward failed")
	}
}

// forwardBuffered sends one buffered-body request to a replica and
// relays the response, recording session routes from creates. Returns
// false on a transport error (nothing written to the client; safe to
// retry elsewhere).
func (p *Proxy) forwardBuffered(w http.ResponseWriter, r *http.Request, rs *replicaState, body []byte) bool {
	resp, err := p.roundTrip(r, rs, body)
	if err != nil {
		p.reg.Add("proxy.forward_errors", 1)
		return false
	}
	defer resp.Body.Close()

	if r.Method == http.MethodPost && r.URL.Path == "/v1/sessions" && resp.StatusCode == http.StatusCreated {
		// Intercept the create response to learn the session id; the bytes
		// still pass through untouched.
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			p.reg.Add("proxy.forward_errors", 1)
			errorJSON(w, http.StatusBadGateway, "replica %s: truncated response: %v", rs.name, err)
			return true // bytes may be half-read; do not retry into a duplicate session
		}
		var created struct {
			SessionID string `json:"sessionId"`
		}
		if json.Unmarshal(data, &created) == nil {
			p.recordSession(created.SessionID, rs.name)
		}
		p.relayResponseBytes(w, resp, data)
		return true
	}
	p.relayResponse(w, resp)
	return true
}

// roundTrip builds and sends the outbound request for a buffered body.
func (p *Proxy) roundTrip(r *http.Request, rs *replicaState, body []byte) (*http.Response, error) {
	url := rs.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeaders(out.Header, r.Header)
	out.Header.Set("X-Gator-Proxy", "gatorproxy")
	return p.fwd.Do(out)
}

// relayResponse copies status, headers, and body, flushing as bytes
// arrive so SSE batch streams pass through live.
func (p *Proxy) relayResponse(w http.ResponseWriter, resp *http.Response) {
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) relayResponseBytes(w http.ResponseWriter, resp *http.Response, body []byte) {
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// routeSession routes /v1/sessions/{id}... to the sticky owner. A missing
// route, a dead owner, or a forward failure all answer 404: the session
// and its warm state are gone, and 404 is precisely the signal the
// client's re-create path keys on.
func (p *Proxy) routeSession(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	rs, ok := p.sessionReplica(id)
	if !ok {
		p.reg.Add("proxy.sessions.lost", 1)
		errorJSON(w, http.StatusNotFound, "no such session (unknown to the cluster, or its replica left)")
		return
	}
	body, ok := p.readRequestBody(w, r)
	if !ok {
		return
	}
	resp, rtErr := p.roundTrip(r, rs, body)
	if rtErr != nil {
		p.reg.Add("proxy.forward_errors", 1)
		if r.Context().Err() != nil {
			// Client-caused cancellation: the replica (and its warm
			// sessions) are fine — do not evict.
			p.reg.Add("proxy.client_aborts", 1)
			return
		}
		p.markDown(rs.name, "forward failed")
		p.reg.Add("proxy.sessions.lost", 1)
		errorJSON(w, http.StatusNotFound, "no such session (its replica just left the cluster)")
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound ||
		(r.Method == http.MethodDelete && resp.StatusCode < 300) {
		// The replica itself no longer has (or just deleted) the session;
		// keep the route table honest.
		p.dropSession(id)
	}
	p.relayResponse(w, resp)
}

// routeScan tries every live replica in ring order until one answers 200
// — used for captured solver traces, which live on whichever replica ran
// the analysis and carry no routing key.
func (p *Proxy) routeScan(w http.ResponseWriter, r *http.Request) {
	for _, name := range p.LiveReplicas() {
		rs, ok := p.replicaByName(name)
		if !ok {
			continue
		}
		resp, err := p.roundTrip(r, rs, nil)
		if err != nil {
			if r.Context().Err() != nil {
				p.reg.Add("proxy.client_aborts", 1)
				return // client gone; don't punish replicas for it
			}
			p.markDown(name, "forward failed")
			continue
		}
		if resp.StatusCode == http.StatusOK {
			defer resp.Body.Close()
			p.relayResponse(w, resp)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	errorJSON(w, http.StatusNotFound, "no replica holds this trace")
}

package cluster

// The cluster's load-bearing property: routing through the proxy changes
// WHERE a report is rendered, never WHAT is rendered. Eight concurrent
// clients drive cold analyzes, shared-cache replays, and warm session
// edits through a 3-replica cluster, and every response is byte-compared
// against a direct single-node daemon answering the same request. Run
// under -race by scripts/ci.sh.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"gator/internal/corpus"
	"gator/internal/server"
)

func TestProxyByteIdenticalToSingleNode(t *testing.T) {
	tc := startCluster(t, 3, server.Config{})

	// The reference: one plain daemon, no cluster anywhere near it.
	solo, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := httptest.NewServer(solo.Handler())
	t.Cleanup(func() {
		solo.Drain()
		ref.Close()
	})
	refClient := server.NewClient(ref.URL)

	kinds := []string{"views", "tuples", "hierarchy", "activities", "table1", "checks", "dot"}
	const clients = 8
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			sources, layouts := corpus.RandomApp(int64(ci%4 + 1))
			name := fmt.Sprintf("diff-%d", ci%4)
			for _, kind := range kinds {
				req := server.AnalyzeRequest{
					Name:       name,
					Sources:    sources,
					Layouts:    layouts,
					ReportSpec: server.ReportSpec{Report: kind},
				}
				want, err := refClient.Analyze(req)
				if err != nil {
					t.Errorf("client %d %s reference: %v", ci, kind, err)
					return
				}
				// Twice: the repeat may replay from any replica's memory
				// tier or from the shared tier — the bytes must not care.
				for round := 0; round < 2; round++ {
					got, err := tc.client.Analyze(req)
					if err != nil {
						t.Errorf("client %d %s round %d: %v", ci, kind, round, err)
						return
					}
					if got.Output != want.Output || got.ExitCode != want.ExitCode || got.Stderr != want.Stderr {
						t.Errorf("client %d %s round %d: proxy-routed report differs from single-node\nproxy (exit %d):\n%s\nsolo (exit %d):\n%s",
							ci, kind, round, got.ExitCode, got.Output, want.ExitCode, want.Output)
						return
					}
				}
			}

			// Warm session through the proxy vs fresh solves on the solo
			// daemon: incremental re-analysis must not drift either.
			open, err := tc.client.OpenSession(server.AnalyzeRequest{
				Name:    fmt.Sprintf("sess-%d", ci),
				Sources: map[string]string{"connectbot.alite": corpus.Figure1Source},
				Layouts: map[string]string{
					"act_console":   corpus.Figure1ActConsoleXML,
					"item_terminal": corpus.Figure1ItemTerminalXML,
				},
				ReportSpec: server.ReportSpec{Report: "views"},
			})
			if err != nil {
				t.Errorf("client %d open: %v", ci, err)
				return
			}
			for round := 0; round < 3; round++ {
				extra := fmt.Sprintf("class Patch%d_%d { void onCreate() {} }", ci, round)
				got, err := tc.client.PatchSession(open.SessionID, server.PatchRequest{
					Sources:    map[string]string{"patch.alite": extra},
					ReportSpec: server.ReportSpec{Report: "views"},
				})
				if err != nil {
					t.Errorf("client %d patch %d: %v", ci, round, err)
					return
				}
				want, err := refClient.Analyze(server.AnalyzeRequest{
					Name: fmt.Sprintf("sess-%d", ci),
					Sources: map[string]string{
						"connectbot.alite": corpus.Figure1Source,
						"patch.alite":      extra,
					},
					Layouts: map[string]string{
						"act_console":   corpus.Figure1ActConsoleXML,
						"item_terminal": corpus.Figure1ItemTerminalXML,
					},
					ReportSpec: server.ReportSpec{Report: "views"},
					NoCache:    true,
				})
				if err != nil {
					t.Errorf("client %d reference patch %d: %v", ci, round, err)
					return
				}
				if got.Output != want.Output || got.ExitCode != want.ExitCode {
					t.Errorf("client %d patch %d: warm session through proxy differs from cold single-node solve\nproxy:\n%s\nsolo:\n%s",
						ci, round, got.Output, want.Output)
					return
				}
			}
			tc.client.CloseSession(open.SessionID)
		}(ci)
	}
	wg.Wait()
}

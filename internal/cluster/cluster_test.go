package cluster

// Test harness shared by the cluster tests: a real proxy in front of real
// in-process replicas (LocalReplica), talked to through the real Go
// client — the full wire path, minus process boundaries.

import (
	"net/http/httptest"
	"testing"

	"gator/internal/corpus"
	"gator/internal/server"
)

// testCluster is a proxy plus n live replicas, all torn down via Cleanup.
type testCluster struct {
	proxy    *Proxy
	ts       *httptest.Server
	replicas []*LocalReplica
	client   *server.Client
}

// startCluster boots n replicas behind a fresh proxy. Each replica gets
// cfg (plus its ReplicaID and a StoreClient against the proxy's shared
// tier, so cross-replica cache hits work out of the box).
func startCluster(t *testing.T, n int, cfg server.Config) *testCluster {
	t.Helper()
	p := New(Config{})
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	tc := &testCluster{proxy: p, ts: ts, client: server.NewClient(ts.URL)}
	cfg.Shared = NewStoreClient(ts.URL)
	for i := 0; i < n; i++ {
		name := replicaName(i)
		lr, err := StartLocalReplica(name, cfg)
		if err != nil {
			t.Fatalf("replica %s: %v", name, err)
		}
		t.Cleanup(lr.Kill)
		tc.replicas = append(tc.replicas, lr)
		p.AddReplica(name, lr.URL())
	}
	return tc
}

func replicaName(i int) string {
	return "r" + string(rune('0'+i))
}

// byName finds a replica by id.
func (tc *testCluster) byName(name string) *LocalReplica {
	for _, lr := range tc.replicas {
		if lr.Name == name {
			return lr
		}
	}
	return nil
}

// figure1Request is the standard small app as an analyze request.
func figure1Request(name, kind string) server.AnalyzeRequest {
	return server.AnalyzeRequest{
		Name:    name,
		Sources: map[string]string{"connectbot.alite": corpus.Figure1Source},
		Layouts: map[string]string{
			"act_console":   corpus.Figure1ActConsoleXML,
			"item_terminal": corpus.Figure1ItemTerminalXML,
		},
		ReportSpec: server.ReportSpec{Report: kind},
	}
}

package cluster

// The cluster-wide /metrics rollup: scrape each live replica's Prometheus
// exposition, parse it with the repo's own validating parser, and re-emit
// every sample with a `replica` label injected — so one scrape of the
// proxy yields per-replica series for every gatord metric family (PR 8),
// joinable on the replica id. The proxy's own metrics follow under the
// gatorproxy_ namespace. The output is deterministic given deterministic
// inputs: replicas render in name order, families in name order, samples
// in each replica's exposition order.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gator/internal/metrics"
)

// escapePromLabel mirrors the metrics renderer's label escaping.
func escapePromLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatPromValue renders a float the way a scraper expects: integers
// without an exponent (counter/bucket values parse back exactly), +Inf
// spelled out.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// replicaScrape is one replica's parsed exposition, tagged with its id.
type replicaScrape struct {
	replica string
	fams    map[string]*metrics.PromFamily
}

// rollupFamily merges one family name across replicas.
type rollupFamily struct {
	name string
	typ  string
	help string
	// samples per replica, in replica order; each sample keeps its
	// original label set (the replica label is injected at render time).
	samples []rollupSample
}

type rollupSample struct {
	replica string
	s       metrics.PromSample
}

// renderRollup merges the scrapes into one exposition. A family whose
// TYPE disagrees across replicas (a mid-rollout version skew) keeps the
// first replica's TYPE and drops the disagreeing replicas' samples —
// emitting both would corrupt the family for every scraper.
func renderRollup(scrapes []replicaScrape) string {
	sort.Slice(scrapes, func(i, j int) bool { return scrapes[i].replica < scrapes[j].replica })
	merged := map[string]*rollupFamily{}
	var order []string
	for _, sc := range scrapes {
		famNames := make([]string, 0, len(sc.fams))
		for name := range sc.fams {
			famNames = append(famNames, name)
		}
		sort.Strings(famNames)
		for _, name := range famNames {
			fam := sc.fams[name]
			m, ok := merged[name]
			if !ok {
				m = &rollupFamily{name: name, typ: fam.Type, help: fam.Help}
				merged[name] = m
				order = append(order, name)
			}
			if fam.Type != m.typ {
				continue
			}
			for _, s := range fam.Samples {
				m.samples = append(m.samples, rollupSample{replica: sc.replica, s: s})
			}
		}
	}
	sort.Strings(order)

	var b strings.Builder
	for _, name := range order {
		m := merged[name]
		typ := m.typ
		if typ == "" {
			typ = "untyped"
		}
		help := m.help
		if help == "" {
			help = name
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, help, m.name, typ)
		for _, rs := range m.samples {
			b.WriteString(rs.s.Name)
			writeRollupLabels(&b, rs.replica, rs.s.Labels)
			b.WriteByte(' ')
			b.WriteString(formatPromValue(rs.s.Value))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// writeRollupLabels renders a sample's label set with the replica label
// first and the original labels after it in sorted name order ("le" kept
// last so histogram series read naturally).
func writeRollupLabels(b *strings.Builder, replica string, labels map[string]string) {
	b.WriteString(`{replica="`)
	b.WriteString(escapePromLabel(replica))
	b.WriteByte('"')
	names := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	if _, ok := labels["le"]; ok {
		names = append(names, "le")
	}
	for _, k := range names {
		b.WriteByte(',')
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapePromLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

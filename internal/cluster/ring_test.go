package cluster

import (
	"fmt"
	"testing"
)

func ringWith(vnodes int, members ...string) *Ring {
	r := NewRing(vnodes)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("app-%d", i)
	}
	return keys
}

// Ownership must be a pure function of the member set: same members, same
// mapping — regardless of insertion order or which process computed it.
func TestRingDeterministicOwnership(t *testing.T) {
	a := ringWith(0, "r1", "r2", "r3", "r4")
	b := ringWith(0, "r4", "r2", "r1", "r3")
	for _, key := range testKeys(5000) {
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: owner depends on insertion order (%s vs %s)", key, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claims an owner")
	}
	r.Add("only")
	for _, key := range testKeys(100) {
		if o, _ := r.Owner(key); o != "only" {
			t.Fatalf("single-member ring routed %q to %q", key, o)
		}
	}
	// Idempotent add must not duplicate points.
	n := len(r.points)
	r.Add("only")
	if len(r.points) != n {
		t.Fatalf("re-adding a member grew the ring: %d -> %d points", n, len(r.points))
	}
}

// Adding one replica to N-1 members may move at most ~1/N of the keys
// (the new replica's arc); we bound it at 2/N to leave room for hash
// variance. Every moved key must have moved TO the new replica — a key
// moving between two surviving replicas would mean the ring reshuffles
// state it had no reason to touch.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	const keys = 20000
	for n := 2; n <= 8; n *= 2 {
		members := make([]string, n-1)
		for i := range members {
			members[i] = fmt.Sprintf("r%d", i)
		}
		r := ringWith(0, members...)
		before := map[string]string{}
		for _, key := range testKeys(keys) {
			before[key], _ = r.Owner(key)
		}
		r.Add("rNew")
		moved := 0
		for _, key := range testKeys(keys) {
			after, _ := r.Owner(key)
			if after == before[key] {
				continue
			}
			moved++
			if after != "rNew" {
				t.Fatalf("n=%d: key %q moved %s -> %s, not to the new replica", n, key, before[key], after)
			}
		}
		limit := 2 * keys / n
		if moved > limit {
			t.Errorf("n=%d: %d of %d keys moved on add, limit %d (2/N)", n, moved, keys, limit)
		}
		if moved == 0 {
			t.Errorf("n=%d: adding a replica moved no keys (it owns nothing)", n)
		}
	}
}

// Removing one replica of N must only move that replica's keys, each to
// some survivor, again within the 2/N bound.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	const keys = 20000
	for n := 2; n <= 8; n *= 2 {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("r%d", i)
		}
		r := ringWith(0, members...)
		before := map[string]string{}
		for _, key := range testKeys(keys) {
			before[key], _ = r.Owner(key)
		}
		victim := "r0"
		r.Remove(victim)
		moved := 0
		for _, key := range testKeys(keys) {
			after, _ := r.Owner(key)
			if after != before[key] {
				moved++
				if before[key] != victim {
					t.Fatalf("n=%d: key %q moved %s -> %s though its owner survived", n, key, before[key], after)
				}
			}
			if after == victim {
				t.Fatalf("n=%d: key %q still owned by removed replica", n, key)
			}
		}
		limit := 2 * keys / n
		if moved > limit {
			t.Errorf("n=%d: %d of %d keys moved on remove, limit %d (2/N)", n, moved, keys, limit)
		}
	}
}

// Remove must be the exact inverse of Add: the mapping after add+remove
// is the mapping before, byte for byte.
func TestRingRemoveRestoresMapping(t *testing.T) {
	r := ringWith(0, "r1", "r2", "r3")
	before := map[string]string{}
	for _, key := range testKeys(5000) {
		before[key], _ = r.Owner(key)
	}
	r.Add("r4")
	r.Remove("r4")
	for _, key := range testKeys(5000) {
		if after, _ := r.Owner(key); after != before[key] {
			t.Fatalf("key %q: add+remove changed owner %s -> %s", key, before[key], after)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d after add+remove, want 3", r.Len())
	}
}

// Shares stay roughly balanced: with DefaultVnodes no replica of four may
// own more than half the keys (the throughput benchmark's scaling floor
// assumes the spread is no worse than this).
func TestRingBalance(t *testing.T) {
	r := ringWith(0, "r1", "r2", "r3", "r4")
	counts := map[string]int{}
	const keys = 20000
	for _, key := range testKeys(keys) {
		o, _ := r.Owner(key)
		counts[o]++
	}
	for m, c := range counts {
		if c > keys/2 {
			t.Errorf("replica %s owns %d of %d keys (>50%%)", m, c, keys)
		}
		if c == 0 {
			t.Errorf("replica %s owns no keys", m)
		}
	}
}

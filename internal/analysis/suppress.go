package analysis

import (
	"strings"

	"gator/internal/checks"
)

// Suppressions records `// gator:disable` comments per file and line. A
// directive suppresses matching findings reported on its own line and on
// the line directly below, so both trailing and leading comment placement
// work:
//
//	v.setId(R.id.x); // gator:disable null-view-deref
//
//	// gator:disable listener-reset, null-view-deref
//	b.setOnClickListener(h);
//
// A bare `// gator:disable` (no names) suppresses every check on those
// lines. Findings without a source position (structural findings) cannot be
// suppressed inline.
type Suppressions map[string]map[int][]string

const disableMarker = "// gator:disable"

// ParseSuppressions scans source texts for disable directives. The map key
// is the file name as it appears in finding positions.
func ParseSuppressions(sources map[string]string) Suppressions {
	var out Suppressions
	for file, src := range sources {
		for i, line := range strings.Split(src, "\n") {
			at := strings.Index(line, disableMarker)
			if at < 0 {
				continue
			}
			rest := line[at+len(disableMarker):]
			// Require a clean word boundary so e.g. "gator:disabled" does
			// not count.
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			var ids []string
			for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				ids = append(ids, name)
			}
			if out == nil {
				out = Suppressions{}
			}
			if out[file] == nil {
				out[file] = map[int][]string{}
			}
			out[file][i+1] = ids // ids == nil means "all checks"
		}
	}
	return out
}

// Matches reports whether a finding is covered by a directive on its line
// or the line above.
func (s Suppressions) Matches(f checks.Finding) bool {
	if s == nil || !f.Pos.IsValid() {
		return false
	}
	lines := s[f.Pos.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		ids, ok := lines[line]
		if !ok {
			continue
		}
		if len(ids) == 0 {
			return true
		}
		for _, id := range ids {
			if id == f.Check {
				return true
			}
		}
	}
	return false
}

package analysis

// Validation of the SARIF writer against a checked-in fragment of the SARIF
// 2.1.0 schema (testdata/sarif-2.1.0-minimal.schema.json). The fragment
// keeps only the required-field structure of the subset gator emits;
// validateSchema below is the matching interpreter: it walks the fragment's
// type / required / properties / items keywords over the emitted document.
// Together they catch the failure mode SARIF consumers reject hardest —
// a required field silently dropped by a writer refactor.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// validateSchema checks doc against a JSON-schema fragment, appending one
// error per violation. path names the document location for messages.
func validateSchema(schema, doc any, path string, errs *[]string) {
	s, ok := schema.(map[string]any)
	if !ok {
		return
	}
	switch s["type"] {
	case "object":
		obj, ok := doc.(map[string]any)
		if !ok {
			*errs = append(*errs, fmt.Sprintf("%s: want object, got %T", path, doc))
			return
		}
		if req, ok := s["required"].([]any); ok {
			for _, r := range req {
				name := r.(string)
				if _, present := obj[name]; !present {
					*errs = append(*errs, fmt.Sprintf("%s: missing required field %q", path, name))
				}
			}
		}
		if props, ok := s["properties"].(map[string]any); ok {
			for name, sub := range props {
				if v, present := obj[name]; present {
					validateSchema(sub, v, path+"."+name, errs)
				}
			}
		}
	case "array":
		arr, ok := doc.([]any)
		if !ok {
			*errs = append(*errs, fmt.Sprintf("%s: want array, got %T", path, doc))
			return
		}
		if items, ok := s["items"]; ok {
			for i, v := range arr {
				validateSchema(items, v, fmt.Sprintf("%s[%d]", path, i), errs)
			}
		}
	}
}

func loadSchema(t *testing.T) any {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "sarif-2.1.0-minimal.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	var schema any
	if err := json.Unmarshal(data, &schema); err != nil {
		t.Fatalf("schema fragment is not valid JSON: %v", err)
	}
	return schema
}

func TestSARIFAgainstSchemaFragment(t *testing.T) {
	schema := loadSchema(t)
	rep, err := Run("app", analyzeSrc(t, buggySrc, buggyLayouts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("buggy source produced no findings; schema validation would be vacuous")
	}

	for _, tc := range []struct {
		name    string
		reports []*Report
	}{
		{"single", []*Report{rep}},
		{"multi", []*Report{rep, rep}},
		{"empty", []*Report{{App: "empty"}}},
	} {
		out, err := SARIFMulti(tc.reports)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var doc any
		if err := json.Unmarshal(out, &doc); err != nil {
			t.Fatalf("%s: writer emitted invalid JSON: %v", tc.name, err)
		}
		var errs []string
		validateSchema(schema, doc, "$", &errs)
		for _, e := range errs {
			t.Errorf("%s: %s", tc.name, e)
		}
	}
}

// TestSchemaFragmentCatches: the validator must actually reject documents
// missing required fields — otherwise the schema test proves nothing.
func TestSchemaFragmentCatches(t *testing.T) {
	schema := loadSchema(t)
	bad := map[string]any{
		"version": "2.1.0",
		"$schema": "x",
		"runs": []any{
			map[string]any{
				"tool": map[string]any{"driver": map[string]any{}}, // no name
				"results": []any{
					map[string]any{"ruleId": "r", "level": "warning"}, // no message
				},
			},
		},
	}
	var errs []string
	validateSchema(schema, bad, "$", &errs)
	if len(errs) != 2 {
		t.Errorf("want 2 violations (driver.name, result.message), got %d: %v", len(errs), errs)
	}
}

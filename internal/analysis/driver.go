// Package analysis is the diagnostics driver: it runs the registered
// checker passes (package checks) over one solved reference analysis,
// applies inline suppressions, times every pass, and renders the findings
// as plain text or SARIF. The pass registry itself lives in package checks;
// this package owns selection, ordering, and output policy.
package analysis

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"gator/internal/checks"
	"gator/internal/core"
	"gator/internal/metrics"
	"gator/internal/trace"
)

// Options selects and configures a driver run.
type Options struct {
	// Checks restricts the run to the named pass IDs. Empty means all
	// registered passes. Unknown names are an error, not a silent no-op.
	Checks []string
	// Sources maps file name → source text, as loaded into the analyzed
	// program. It is scanned for `// gator:disable` suppression comments;
	// nil disables suppression handling.
	Sources map[string]string
	// Trace, when non-nil, brackets every pass in a "check:<id>" phase and
	// forwards the checkers' dataflow-solver events.
	Trace *trace.Scope
}

// Report is the outcome of one driver run over one application.
type Report struct {
	// App is the analyzed application's name.
	App string
	// Findings are the kept findings in deterministic (Pos, Check, Msg)
	// order.
	Findings []checks.Finding
	// Passes records per-pass wall-clock and yield, in execution order.
	Passes []metrics.PassStats
	// Suppressed counts findings dropped by `// gator:disable` comments.
	Suppressed int
}

// Warnings counts findings at Warning severity.
func (r *Report) Warnings() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == checks.Warning {
			n++
		}
	}
	return n
}

// Run executes the selected passes over a solved analysis. Passes run in
// registry order — all solution passes before any CFG pass, ID-sorted
// within each kind — regardless of the order names appear in opts.Checks.
func Run(app string, res *core.Result, opts Options) (*Report, error) {
	passes, err := selectPasses(opts.Checks)
	if err != nil {
		return nil, err
	}
	sup := ParseSuppressions(opts.Sources)
	ctx := checks.NewContext(res)
	ctx.Trace = opts.Trace
	rep := &Report{App: app}
	for _, p := range passes {
		start := time.Now()
		opts.Trace.Begin("check:" + p.ID)
		found := p.Run(ctx)
		opts.Trace.End("check:" + p.ID)
		kept := found[:0]
		for _, f := range found {
			if sup.Matches(f) {
				rep.Suppressed++
				continue
			}
			kept = append(kept, f)
		}
		rep.Passes = append(rep.Passes, metrics.PassStats{
			Pass:     p.ID,
			Wall:     time.Since(start),
			Findings: len(kept),
		})
		rep.Findings = append(rep.Findings, kept...)
	}
	checks.SortFindings(rep.Findings)
	return rep, nil
}

// selectPasses resolves check names to registered passes, preserving the
// registry's execution order. A name may be a glob pattern (path.Match
// syntax, e.g. "lifecycle-*"), which selects every matching registered ID;
// a pattern matching nothing is an error just like an unknown exact name.
func selectPasses(names []string) ([]checks.Pass, error) {
	all := checks.All()
	if len(names) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if strings.ContainsAny(n, "*?[") {
			matched := false
			for _, p := range all {
				ok, err := path.Match(n, p.ID)
				if err != nil {
					return nil, fmt.Errorf("bad check pattern %q: %v", n, err)
				}
				if ok {
					want[p.ID] = true
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("check pattern %q matches no registered check (run -listchecks for the registry)", n)
			}
			continue
		}
		if _, ok := checks.PassByID(n); !ok {
			return nil, fmt.Errorf("unknown check %q (run -listchecks for the registry)", n)
		}
		want[n] = true
	}
	var out []checks.Pass
	for _, p := range all {
		if want[p.ID] {
			out = append(out, p)
		}
	}
	return out, nil
}

// Text renders the report as plain text: one line per finding, then a
// summary line.
func Text(r *Report) string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintln(&b, f.String())
		if f.SuggestedFix != "" {
			fmt.Fprintf(&b, "\tfix: %s\n", f.SuggestedFix)
		}
	}
	warn := r.Warnings()
	fmt.Fprintf(&b, "%s: %d warnings, %d notes", r.App, warn, len(r.Findings)-warn)
	if r.Suppressed > 0 {
		fmt.Fprintf(&b, ", %d suppressed", r.Suppressed)
	}
	b.WriteString("\n")
	return b.String()
}

// MarkdownTable renders the pass registry as a Markdown table, for the
// README's checker section. Rows are in registry order.
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| Check | Severity | Needs | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, p := range checks.All() {
		needs := "solution"
		if p.Kind == checks.KindCFG {
			needs = "CFG + dataflow"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", p.ID, p.Severity, needs, p.Doc)
	}
	return b.String()
}

// ListChecks renders the registry as aligned plain text for -listchecks.
func ListChecks() string {
	all := checks.All()
	width := 0
	for _, p := range all {
		if len(p.ID) > width {
			width = len(p.ID)
		}
	}
	var b strings.Builder
	for _, p := range all {
		fmt.Fprintf(&b, "%-*s  %-7s  %s\n", width, p.ID, p.Severity.String(), p.Doc)
	}
	return b.String()
}

// CheckIDs returns all registered pass IDs, sorted.
func CheckIDs() []string {
	var ids []string
	for _, p := range checks.All() {
		ids = append(ids, p.ID)
	}
	sort.Strings(ids)
	return ids
}

package analysis

// Minimal SARIF 2.1.0 writer. Only the subset consumed by code-review UIs
// is emitted: one run per report, the pass registry as the tool's rules,
// and one result per finding with a physical location when the finding has
// a source position.

import (
	"encoding/json"

	"gator/internal/checks"
)

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifFix struct {
	Description sarifMessage `json:"description"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders one report as a SARIF 2.1.0 log with a single run.
func SARIF(r *Report) ([]byte, error) { return SARIFMulti([]*Report{r}) }

// SARIFMulti renders several reports (e.g. one per batch application) as a
// SARIF 2.1.0 log with one run per report.
func SARIFMulti(reports []*Report) ([]byte, error) {
	log := sarifLog{Version: sarifVersion, Schema: sarifSchema, Runs: []sarifRun{}}
	for _, r := range reports {
		log.Runs = append(log.Runs, sarifRunOf(r))
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func sarifRunOf(r *Report) sarifRun {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{Name: "gator"}},
		// SARIF consumers reject null results; always emit an array.
		Results: []sarifResult{},
	}
	for _, p := range checks.All() {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               p.ID,
			ShortDescription: sarifMessage{Text: p.Doc},
		})
	}
	for _, f := range r.Findings {
		res := sarifResult{
			RuleID:  f.Check,
			Level:   sarifLevel(f.Severity),
			Message: sarifMessage{Text: f.Msg},
		}
		if f.Pos.IsValid() {
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.File},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Col},
				},
			}}
		}
		if f.SuggestedFix != "" {
			res.Fixes = []sarifFix{{Description: sarifMessage{Text: f.SuggestedFix}}}
		}
		run.Results = append(run.Results, res)
	}
	return run
}

func sarifLevel(s checks.Severity) string {
	if s == checks.Warning {
		return "warning"
	}
	return "note"
}

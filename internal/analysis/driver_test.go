package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/checks"
	"gator/internal/core"
	"gator/internal/ir"
	"gator/internal/layout"
)

const buggySrc = `
class Main extends Activity {
	void onCreate() {
		View early = this.findViewById(R.id.root);
		this.setContentView(R.layout.main);
		View gone = this.findViewById(R.id.gone);
		gone.setId(R.id.root);
	}
}`

var buggyLayouts = map[string]string{
	"main":  `<LinearLayout android:id="@+id/root"/>`,
	"other": `<LinearLayout android:id="@+id/gone"/>`,
}

func analyzeSrc(t *testing.T, src string, layouts map[string]string) *core.Result {
	t.Helper()
	f, err := alite.Parse("app.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(p, core.Options{})
}

func TestRunAllPasses(t *testing.T) {
	rep, err := Run("app", analyzeSrc(t, buggySrc, buggyLayouts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != len(checks.All()) {
		t.Errorf("ran %d passes, want %d", len(rep.Passes), len(checks.All()))
	}
	seen := map[string]bool{}
	for _, f := range rep.Findings {
		seen[f.Check] = true
	}
	for _, want := range []string{"findview-before-setcontentview", "null-view-deref", "dangling-findview"} {
		if !seen[want] {
			t.Errorf("missing %s finding; got %v", want, rep.Findings)
		}
	}
	if rep.Warnings() == 0 {
		t.Error("no warnings counted")
	}
}

func TestRunSelection(t *testing.T) {
	res := analyzeSrc(t, buggySrc, buggyLayouts)
	rep, err := Run("app", res, Options{Checks: []string{"null-view-deref"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 1 || rep.Passes[0].Pass != "null-view-deref" {
		t.Errorf("passes = %+v", rep.Passes)
	}
	for _, f := range rep.Findings {
		if f.Check != "null-view-deref" {
			t.Errorf("unselected finding %v", f)
		}
	}
	if len(rep.Findings) == 0 {
		t.Error("selected pass produced nothing")
	}

	if _, err := Run("app", res, Options{Checks: []string{"no-such-check"}}); err == nil {
		t.Error("unknown check name accepted")
	} else if !strings.Contains(err.Error(), "no-such-check") {
		t.Errorf("error does not name the bad check: %v", err)
	}
}

func TestSelectPassesGlob(t *testing.T) {
	passes, err := selectPasses([]string{"lifecycle-*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 3 {
		t.Fatalf("lifecycle-* selected %d passes, want the 3 ordering checkers", len(passes))
	}
	for _, p := range passes {
		if !strings.HasPrefix(p.ID, "lifecycle-") {
			t.Errorf("pattern lifecycle-* selected %s", p.ID)
		}
	}

	// A glob composes with exact names, dedups, and keeps registry order.
	passes, err = selectPasses([]string{"lifecycle-*", "lifecycle-dialog-misuse", "dangling-findview"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, p := range passes {
		seen[p.ID]++
	}
	if seen["lifecycle-dialog-misuse"] != 1 {
		t.Errorf("glob + exact name duplicated a pass: %v", seen)
	}
	if seen["dangling-findview"] != 1 {
		t.Errorf("exact name alongside glob not selected: %v", seen)
	}

	// A pattern matching nothing is an error, like an unknown exact name.
	if _, err := selectPasses([]string{"nope-*"}); err == nil {
		t.Error("pattern matching no checks accepted")
	} else if !strings.Contains(err.Error(), "nope-*") {
		t.Errorf("error does not name the bad pattern: %v", err)
	}

	// A malformed pattern reports a pattern error.
	if _, err := selectPasses([]string{"lifecycle-["}); err == nil {
		t.Error("malformed pattern accepted")
	}
}

func TestRunSelectionPreservesRegistryOrder(t *testing.T) {
	res := analyzeSrc(t, buggySrc, buggyLayouts)
	// Request a CFG pass before a solution pass: execution order must still
	// be solution-first.
	rep, err := Run("app", res, Options{Checks: []string{"null-view-deref", "dangling-findview"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 2 || rep.Passes[0].Pass != "dangling-findview" || rep.Passes[1].Pass != "null-view-deref" {
		t.Errorf("passes = %+v", rep.Passes)
	}
}

func TestSuppression(t *testing.T) {
	srcTrailing := strings.Replace(buggySrc,
		"gone.setId(R.id.root);",
		"gone.setId(R.id.root); // gator:disable null-view-deref", 1)
	res := analyzeSrc(t, srcTrailing, buggyLayouts)
	rep, err := Run("app", res, Options{
		Checks:  []string{"null-view-deref"},
		Sources: map[string]string{"app.alite": srcTrailing},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 || rep.Suppressed != 1 {
		t.Errorf("findings = %v, suppressed = %d", rep.Findings, rep.Suppressed)
	}

	// Leading-comment placement: the directive covers the next line.
	srcLeading := strings.Replace(buggySrc,
		"\t\tgone.setId(R.id.root);",
		"\t\t// gator:disable\n\t\tgone.setId(R.id.root);", 1)
	rep, err = Run("app", analyzeSrc(t, srcLeading, buggyLayouts), Options{
		Checks:  []string{"null-view-deref"},
		Sources: map[string]string{"app.alite": srcLeading},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 || rep.Suppressed != 1 {
		t.Errorf("bare disable: findings = %v, suppressed = %d", rep.Findings, rep.Suppressed)
	}

	// A directive naming a different check does not match.
	rep, err = Run("app", analyzeSrc(t, srcTrailing, buggyLayouts), Options{
		Checks:  []string{"null-view-deref"},
		Sources: map[string]string{"app.alite": strings.Replace(srcTrailing, "disable null-view-deref", "disable listener-reset", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || rep.Suppressed != 0 {
		t.Errorf("mismatched disable: findings = %v, suppressed = %d", rep.Findings, rep.Suppressed)
	}
}

func TestSARIFShape(t *testing.T) {
	rep, err := Run("app", analyzeSrc(t, buggySrc, buggyLayouts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := SARIF(rep)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version = %q schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gator" || len(run.Tool.Driver.Rules) != len(checks.All()) {
		t.Errorf("driver = %s with %d rules", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != len(rep.Findings) {
		t.Fatalf("results = %d, findings = %d", len(run.Results), len(rep.Findings))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
	}
	for _, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result rule %q not declared", r.RuleID)
		}
		if r.Level != "warning" && r.Level != "note" {
			t.Errorf("level = %q", r.Level)
		}
		if r.Message.Text == "" {
			t.Error("empty message")
		}
		for _, loc := range r.Locations {
			if loc.PhysicalLocation.ArtifactLocation.URI == "" || loc.PhysicalLocation.Region.StartLine == 0 {
				t.Errorf("incomplete location %+v", loc)
			}
		}
	}
}

func TestTextRenderer(t *testing.T) {
	rep, err := Run("app", analyzeSrc(t, buggySrc, buggyLayouts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Text(rep)
	if !strings.Contains(out, "null-view-deref") || !strings.Contains(out, "fix:") {
		t.Errorf("text = %q", out)
	}
	if !strings.Contains(out, "warnings") {
		t.Errorf("no summary line: %q", out)
	}
}

func TestMarkdownTable(t *testing.T) {
	table := MarkdownTable()
	for _, p := range checks.All() {
		if !strings.Contains(table, "`"+p.ID+"`") {
			t.Errorf("table misses %s", p.ID)
		}
	}
	if !strings.Contains(table, "| Check | Severity |") {
		t.Errorf("missing header: %q", table[:60])
	}
}

func TestListChecks(t *testing.T) {
	out := ListChecks()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(checks.All()) {
		t.Errorf("%d lines for %d checks", len(lines), len(checks.All()))
	}
	if !strings.Contains(out, "listener-reset") {
		t.Errorf("listchecks = %q", out)
	}
}

package alite

// The ALite abstract syntax tree. The surface syntax permits nested
// expressions (e.g. b.getCurrentView().findViewById(a)); lowering to the
// three-address form of the paper happens in package ir.

// File is one parsed compilation unit.
type File struct {
	Name  string // source file name
	Decls []Decl
}

// Decl is a top-level declaration: *ClassDecl or *InterfaceDecl.
type Decl interface {
	DeclName() string
	DeclPos() Pos
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	Pos        Pos
	Name       string
	Super      string   // "" means Object
	Implements []string // interface names
	Fields     []*FieldDecl
	Methods    []*MethodDecl // includes constructors (IsCtor)
}

func (d *ClassDecl) DeclName() string { return d.Name }
func (d *ClassDecl) DeclPos() Pos     { return d.Pos }

// InterfaceDecl is an interface declaration. Interface bodies list method
// signatures (methods with nil Body).
type InterfaceDecl struct {
	Pos     Pos
	Name    string
	Extends []string
	Methods []*MethodDecl
}

func (d *InterfaceDecl) DeclName() string { return d.Name }
func (d *InterfaceDecl) DeclPos() Pos     { return d.Pos }

// FieldDecl is a field declaration.
type FieldDecl struct {
	Pos  Pos
	Type Type
	Name string
}

// Param is a formal parameter.
type Param struct {
	Pos  Pos
	Type Type
	Name string
}

// MethodDecl is a method or constructor declaration.
type MethodDecl struct {
	Pos    Pos
	Return Type // TypeVoid for void and constructors
	Name   string
	Params []*Param
	Body   *Block // nil for interface method signatures
	IsCtor bool
}

// Type is a declared ALite type.
type Type struct {
	// Name is a class/interface name; "" when primitive or void.
	Name string
	Prim PrimKind
}

// PrimKind distinguishes the non-reference types.
type PrimKind int

const (
	RefType PrimKind = iota // class or interface type; Type.Name holds it
	TypeInt
	TypeVoid
)

// IsRef reports whether t is a reference (class/interface) type.
func (t Type) IsRef() bool { return t.Prim == RefType }

func (t Type) String() string {
	switch t.Prim {
	case TypeInt:
		return "int"
	case TypeVoid:
		return "void"
	default:
		return t.Name
	}
}

// Block is a sequence of statements.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface{ StmtPos() Pos }

// LocalDecl declares a local variable with an optional initializer.
type LocalDecl struct {
	Pos  Pos
	Type Type
	Name string
	Init Expr // may be nil
}

// AssignStmt assigns Value to Target. Target is a *VarExpr or *FieldExpr.
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// ExprStmt evaluates a call expression for its effects.
type ExprStmt struct {
	Pos Pos
	X   Expr // *CallExpr or *NewExpr
}

// ReturnStmt returns from the enclosing method.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for bare return
}

// IfStmt branches on a condition. ALite conditions are either the
// nondeterministic '*' or a null comparison; the analysis is flow-insensitive
// and visits both arms, while the interpreter evaluates the condition.
type IfStmt struct {
	Pos  Pos
	Cond Cond
	Then *Block
	Else *Block // may be nil
}

// WhileStmt loops on a condition.
type WhileStmt struct {
	Pos  Pos
	Cond Cond
	Body *Block
}

func (s *LocalDecl) StmtPos() Pos  { return s.Pos }
func (s *AssignStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos   { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }
func (s *IfStmt) StmtPos() Pos     { return s.Pos }
func (s *WhileStmt) StmtPos() Pos  { return s.Pos }

// Cond is a branch condition.
type Cond struct {
	Pos Pos
	// Nondet is true for the '*' condition.
	Nondet bool
	// X is the operand of a null comparison (X == null / X != null).
	X Expr
	// Negated is true for '!=' (X != null).
	Negated bool
}

// Expr is an expression node.
type Expr interface{ ExprPos() Pos }

// VarExpr references a local variable, parameter, or 'this'.
type VarExpr struct {
	Pos    Pos
	Name   string // "this" for the receiver
	IsThis bool
}

// FieldExpr accesses Base.Name.
type FieldExpr struct {
	Pos  Pos
	Base Expr
	Name string
}

// CallExpr invokes Base.Name(Args).
type CallExpr struct {
	Pos  Pos
	Base Expr
	Name string
	Args []Expr
}

// NewExpr instantiates a class: new Class(Args).
type NewExpr struct {
	Pos   Pos
	Class string
	Args  []Expr
}

// CastExpr is (Type) X.
type CastExpr struct {
	Pos  Pos
	Type Type
	X    Expr
}

// NullExpr is the null literal.
type NullExpr struct{ Pos Pos }

// IntExpr is an integer literal.
type IntExpr struct {
	Pos   Pos
	Value int
}

// RRefExpr references a generated resource constant: R.layout.Name,
// R.id.Name, or R.string.Name.
type RRefExpr struct {
	Pos    Pos
	Layout bool // true for R.layout
	Str    bool // true for R.string; both false for R.id
	Name   string
}

// ClassLitExpr is a class literal: Name.class (used to target intents).
type ClassLitExpr struct {
	Pos  Pos
	Name string
}

func (e *VarExpr) ExprPos() Pos      { return e.Pos }
func (e *FieldExpr) ExprPos() Pos    { return e.Pos }
func (e *CallExpr) ExprPos() Pos     { return e.Pos }
func (e *NewExpr) ExprPos() Pos      { return e.Pos }
func (e *CastExpr) ExprPos() Pos     { return e.Pos }
func (e *NullExpr) ExprPos() Pos     { return e.Pos }
func (e *IntExpr) ExprPos() Pos      { return e.Pos }
func (e *RRefExpr) ExprPos() Pos     { return e.Pos }
func (e *ClassLitExpr) ExprPos() Pos { return e.Pos }

package alite

import (
	"strings"
	"testing"
)

// TestPrintAllForms drives the printer over every syntactic form.
func TestPrintAllForms(t *testing.T) {
	src := `
interface Cmd extends OnClickListener {
	void run(View target);
	int priority();
}

class Base {
	int counter;
	View held;

	Base(int start) {
		this.counter = start;
	}

	View fetch(View v, int id) {
		if (v == null) {
			return null;
		} else {
			View w = v.findViewById(id);
			return w;
		}
	}

	void churn(View v) {
		while (v != null) {
			v = null;
		}
		while (*) {
			this.counter = 0;
		}
		if (*) {
			this.held = v;
		}
		int x = 0x10;
		int y = R.id.some_id;
		int z = R.layout.some_layout;
		Button b = (Button) v;
		Intent i = new Intent(Other.class);
		v.setId(3);
	}
}

class Other extends Activity {
	void onCreate() {
	}
}
`
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f)
	for _, want := range []string{
		"interface Cmd extends OnClickListener {",
		"void run(View target);",
		"int priority();",
		"Base(int start) {",
		"if (v == null) {",
		"} else {",
		"return null;",
		"while (v != null) {",
		"while (*) {",
		"if (*) {",
		"int x = 16;", // hex normalizes to decimal
		"R.id.some_id",
		"R.layout.some_layout",
		"(Button) v",
		"new Intent(Other.class)",
		"v.setId(3);",
		"v = null;",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed output missing %q:\n%s", want, printed)
		}
	}
	// Fixed point.
	f2, err := Parse("t2", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if Print(f2) != printed {
		t.Error("print not idempotent")
	}
}

func TestASTAccessors(t *testing.T) {
	f := MustParse("t", `
interface I { void m(View v); }
class A implements I {
	int f;
	void m(View v) {
		if (*) { return; }
		while (*) { v.findFocus(); }
		int x = 1;
		x = 2;
		v.setId(x);
	}
}`)
	for _, d := range f.Decls {
		if d.DeclName() == "" {
			t.Error("empty DeclName")
		}
		if !d.DeclPos().IsValid() {
			t.Error("invalid DeclPos")
		}
	}
	cd := f.Decls[1].(*ClassDecl)
	for _, s := range cd.Methods[0].Body.Stmts {
		if !s.StmtPos().IsValid() {
			t.Errorf("statement %T without position", s)
		}
	}
	var checkExprs func(e Expr)
	checkExprs = func(e Expr) {
		if !e.ExprPos().IsValid() {
			t.Errorf("expression %T without position", e)
		}
	}
	ld := cd.Methods[0].Body.Stmts[2].(*LocalDecl)
	checkExprs(ld.Init)
}

func TestDiagnosticTypes(t *testing.T) {
	var el ErrorList
	if el.Err() != nil {
		t.Error("empty list is an error")
	}
	if el.Error() != "no errors" {
		t.Errorf("empty Error() = %q", el.Error())
	}
	el.Add(Pos{File: "f", Line: 1, Col: 2}, "first %d", 1)
	if el.Err() == nil {
		t.Error("nonempty list is nil error")
	}
	if got := el.Error(); !strings.Contains(got, "f:1:2") || !strings.Contains(got, "first 1") {
		t.Errorf("Error() = %q", got)
	}
	el.Add(Pos{}, "second")
	if got := el.Error(); !strings.Contains(got, "and 1 more") {
		t.Errorf("Error() = %q", got)
	}
	e := &Error{Msg: "bare"}
	if e.Error() != "bare" {
		t.Errorf("positionless Error() = %q", e.Error())
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos is valid")
	}
	if (Pos{Line: 1, Col: 1}).String() != "1:1" {
		t.Error("fileless Pos string")
	}
}

func TestTokenStrings(t *testing.T) {
	toks, err := Tokenize("t", `name 42 class`)
	if err != nil {
		t.Fatal(err)
	}
	if got := toks[0].String(); !strings.Contains(got, "name") {
		t.Errorf("ident token = %q", got)
	}
	if got := toks[1].String(); !strings.Contains(got, "42") {
		t.Errorf("int token = %q", got)
	}
	if got := toks[2].String(); got != "'class'" {
		t.Errorf("keyword token = %q", got)
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

package alite

import (
	"strings"
	"testing"
)

// figure1 is the running example of the paper (Figure 1), transcribed into
// ALite surface syntax.
const figure1 = `
class ConsoleActivity extends Activity {
	ViewFlipper flip;

	View findCurrentView(int a) {
		ViewFlipper b = this.flip;
		View c = b.getCurrentView();
		View d = c.findViewById(a);
		return d;
	}

	void onCreate() {
		this.setContentView(R.layout.act_console);
		View e = this.findViewById(R.id.console_flip);
		ViewFlipper f = (ViewFlipper) e;
		this.flip = f;
		View g = this.findViewById(R.id.button_esc);
		ImageView h = (ImageView) g;
		EscapeButtonListener j = new EscapeButtonListener(this);
		h.setOnClickListener(j);
	}

	void addNewTerminalView(TerminalBridge bridge) {
		LayoutInflater inflater = this.getLayoutInflater();
		View k = inflater.inflate(R.layout.item_terminal);
		RelativeLayout n = (RelativeLayout) k;
		TerminalView m = new TerminalView(bridge);
		m.setId(R.id.console_flip);
		m.addView(n);
		ViewFlipper p = this.flip;
		p.addView(m);
	}
}

class TerminalView extends ViewGroup {
	TerminalBridge bridge;
	TerminalView(TerminalBridge b) { this.bridge = b; }
}

class TerminalBridge {
	TerminalBridge() { }
}

class EscapeButtonListener implements OnClickListener {
	ConsoleActivity cact;

	EscapeButtonListener(ConsoleActivity q) {
		this.cact = q;
	}

	void onClick(View r) {
		ConsoleActivity s = this.cact;
		View t = s.findCurrentView(R.id.console_flip);
		TerminalView v = (TerminalView) t;
	}
}
`

func TestParseFigure1(t *testing.T) {
	f, err := Parse("figure1.alite", figure1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Decls) != 4 {
		t.Fatalf("got %d decls, want 4", len(f.Decls))
	}
	ca, ok := f.Decls[0].(*ClassDecl)
	if !ok || ca.Name != "ConsoleActivity" {
		t.Fatalf("decl 0 = %v", f.Decls[0])
	}
	if ca.Super != "Activity" {
		t.Errorf("super = %q, want Activity", ca.Super)
	}
	if len(ca.Fields) != 1 || ca.Fields[0].Name != "flip" {
		t.Errorf("fields = %v", ca.Fields)
	}
	if len(ca.Methods) != 3 {
		t.Fatalf("got %d methods, want 3", len(ca.Methods))
	}
	ebl := f.Decls[3].(*ClassDecl)
	if len(ebl.Implements) != 1 || ebl.Implements[0] != "OnClickListener" {
		t.Errorf("implements = %v", ebl.Implements)
	}
	var ctor *MethodDecl
	for _, m := range ebl.Methods {
		if m.IsCtor {
			ctor = m
		}
	}
	if ctor == nil {
		t.Fatal("no constructor in EscapeButtonListener")
	}
	if len(ctor.Params) != 1 || ctor.Params[0].Type.Name != "ConsoleActivity" {
		t.Errorf("ctor params = %v", ctor.Params)
	}
}

func TestParseRRef(t *testing.T) {
	f, err := Parse("t", `class A { void m() { int x = R.layout.main; int y = R.id.button; } }`)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ClassDecl).Methods[0].Body
	x := body.Stmts[0].(*LocalDecl).Init.(*RRefExpr)
	if !x.Layout || x.Name != "main" {
		t.Errorf("x = %+v", x)
	}
	y := body.Stmts[1].(*LocalDecl).Init.(*RRefExpr)
	if y.Layout || y.Name != "button" {
		t.Errorf("y = %+v", y)
	}
}

func TestParseCastVsGrouping(t *testing.T) {
	f, err := Parse("t", `class A { void m(View v) { Button b = (Button) v; View w = (v); } }`)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ClassDecl).Methods[0].Body
	c, ok := body.Stmts[0].(*LocalDecl).Init.(*CastExpr)
	if !ok {
		t.Fatalf("stmt 0 init is %T, want cast", body.Stmts[0].(*LocalDecl).Init)
	}
	if c.Type.Name != "Button" {
		t.Errorf("cast type = %s", c.Type)
	}
	if _, ok := body.Stmts[1].(*LocalDecl).Init.(*VarExpr); !ok {
		t.Errorf("stmt 1 init is %T, want grouped var", body.Stmts[1].(*LocalDecl).Init)
	}
}

func TestParseChainedCalls(t *testing.T) {
	f, err := Parse("t", `class A { View m(View v, int i) { return v.findFocus().findViewById(i); } }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Decls[0].(*ClassDecl).Methods[0].Body.Stmts[0].(*ReturnStmt)
	outer, ok := ret.Value.(*CallExpr)
	if !ok || outer.Name != "findViewById" {
		t.Fatalf("outer = %v", ret.Value)
	}
	inner, ok := outer.Base.(*CallExpr)
	if !ok || inner.Name != "findFocus" {
		t.Fatalf("inner = %v", outer.Base)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
class A {
	void m(View v) {
		if (*) {
			v.setId(1);
		} else {
			v.setId(2);
		}
		while (v != null) {
			v.findFocus();
		}
		if (v == null) { return; }
	}
}`
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ClassDecl).Methods[0].Body
	ifs := body.Stmts[0].(*IfStmt)
	if !ifs.Cond.Nondet || ifs.Else == nil {
		t.Errorf("if = %+v", ifs)
	}
	ws := body.Stmts[1].(*WhileStmt)
	if ws.Cond.Nondet || !ws.Cond.Negated {
		t.Errorf("while cond = %+v", ws.Cond)
	}
	ifn := body.Stmts[2].(*IfStmt)
	if ifn.Cond.Negated || ifn.Cond.Nondet {
		t.Errorf("null test cond = %+v", ifn.Cond)
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `class A { void m(View v) { if (*) { v.setId(1); } else if (*) { v.setId(2); } } }`
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.Decls[0].(*ClassDecl).Methods[0].Body.Stmts[0].(*IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatalf("else = %+v", ifs.Else)
	}
	if _, ok := ifs.Else.Stmts[0].(*IfStmt); !ok {
		t.Errorf("else body is %T, want nested if", ifs.Else.Stmts[0])
	}
}

func TestParseInterfaceDecl(t *testing.T) {
	src := `
interface Command extends OnClickListener {
	void run(View target);
	int priority();
}`
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Decls[0].(*InterfaceDecl)
	if d.Name != "Command" || len(d.Extends) != 1 || len(d.Methods) != 2 {
		t.Fatalf("iface = %+v", d)
	}
	if d.Methods[1].Return.Prim != TypeInt {
		t.Errorf("priority return = %v", d.Methods[1].Return)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"class {",                               // missing name
		"class A extends { }",                   // missing super
		"class A { void m() { x = ; } }",        // missing rhs
		"class A { void m() { 3; } }",           // non-call expr stmt
		"class A { void m() { v.f = new; } }",   // bad new
		"class A { void m() { if (v) { } } }",   // bad condition
		"class A { void m() { R.menu.x; } }",    // bad R section
		"class A { int m() { return 1 } }",      // missing semicolon
		"banana",                                // not a decl
		"class A { void m() { this = null; } }", // assign to this...
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("Parse(%q): want error, got none", src)
		}
	}
}

func TestParserRecoversAndReportsAll(t *testing.T) {
	src := `class A { void m() { x = ; } void n() { y = ; } }`
	_, err := Parse("t", src)
	if err == nil {
		t.Fatal("want errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("err is %T", err)
	}
	if len(el) < 2 {
		t.Errorf("got %d errors, want >= 2: %v", len(el), el)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	f, err := Parse("figure1.alite", figure1)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f)
	f2, err := Parse("printed.alite", printed)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\n%s", err, printed)
	}
	printed2 := Print(f2)
	if printed != printed2 {
		t.Errorf("print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
	if !strings.Contains(printed, "R.layout.act_console") {
		t.Errorf("printed output lost R reference:\n%s", printed)
	}
}

func TestParseClassLiteral(t *testing.T) {
	src := `class A extends Activity { void m() { Intent i = new Intent(B.class); } } class B extends Activity { }`
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	init := f.Decls[0].(*ClassDecl).Methods[0].Body.Stmts[0].(*LocalDecl).Init
	ne, ok := init.(*NewExpr)
	if !ok || len(ne.Args) != 1 {
		t.Fatalf("init = %v", init)
	}
	cl, ok := ne.Args[0].(*ClassLitExpr)
	if !ok || cl.Name != "B" {
		t.Fatalf("arg = %v", ne.Args[0])
	}
	// Printing round-trips the literal.
	printed := Print(f)
	if !strings.Contains(printed, "B.class") {
		t.Errorf("printed output lost class literal:\n%s", printed)
	}
	if _, err := Parse("p", printed); err != nil {
		t.Errorf("reparse failed: %v", err)
	}
}

func TestParseClassLiteralErrors(t *testing.T) {
	for _, src := range []string{
		`class A { void m() { Intent i = new Intent(this.class); } }`,
		`class A { View f; void m() { Intent i = new Intent(this.f.class); } }`,
	} {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("t", "class {")
}

package alite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics: the parser must return errors, not panic, on
// arbitrarily mutated input. Each trial takes a valid program and applies
// random byte mutations (flips, deletions, truncations, duplications).
func TestParserNeverPanics(t *testing.T) {
	base := []byte(figure1)
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
				t.Logf("seed %d: parser panicked: %v", seed, r)
			}
		}()
		r := rand.New(rand.NewSource(seed))
		src := append([]byte{}, base...)
		for i, n := 0, 1+r.Intn(20); i < n; i++ {
			if len(src) == 0 {
				break
			}
			pos := r.Intn(len(src))
			switch r.Intn(4) {
			case 0: // flip
				src[pos] = byte(r.Intn(128))
			case 1: // delete
				src = append(src[:pos], src[pos+1:]...)
			case 2: // truncate
				src = src[:pos]
			case 3: // duplicate a chunk
				end := pos + r.Intn(10)
				if end > len(src) {
					end = len(src)
				}
				src = append(src[:end:end], src[pos:]...)
			}
		}
		_, _ = Parse("mutated", string(src))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerNeverPanics: arbitrary byte strings tokenize without panicking
// and every token stream ends in EOF.
func TestLexerNeverPanics(t *testing.T) {
	prop := func(src []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
				t.Logf("lexer panicked on %q: %v", src, r)
			}
		}()
		toks, _ := Tokenize("fuzz", string(src))
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPrintParseFixpointOnFigure1 verifies Print∘Parse is idempotent on a
// substantial program.
func TestPrintParseFixpointOnFigure1(t *testing.T) {
	f1 := MustParse("a", figure1)
	p1 := Print(f1)
	f2 := MustParse("b", p1)
	p2 := Print(f2)
	if p1 != p2 {
		t.Error("Print∘Parse is not a fixed point")
	}
}

// Package alite implements the frontend for ALite, the abstracted core
// language of the paper: a Java-like object-oriented language extended with
// the Android constructs relevant to GUI reference analysis (R.layout/R.id
// references and platform API calls).
//
// The package provides a lexer, a recursive-descent parser producing an AST,
// and a pretty-printer. Semantic resolution and lowering to the three-address
// IR consumed by the analysis live in package ir.
package alite

import "fmt"

// Kind identifies a lexical token class.
type Kind int

const (
	EOF Kind = iota
	IDENT
	INT // integer literal

	// Keywords.
	KwClass
	KwInterface
	KwExtends
	KwImplements
	KwNew
	KwReturn
	KwIf
	KwElse
	KwWhile
	KwNull
	KwThis
	KwVoid
	KwInt

	// Punctuation and operators.
	LBrace    // {
	RBrace    // }
	LParen    // (
	RParen    // )
	Semi      // ;
	Comma     // ,
	Dot       // .
	Assign    // =
	EqEq      // ==
	BangEq    // !=
	Star      // * (nondeterministic condition)
	LessColon // <: (unused; reserved)
)

var kindNames = map[Kind]string{
	EOF:          "end of file",
	IDENT:        "identifier",
	INT:          "integer literal",
	KwClass:      "'class'",
	KwInterface:  "'interface'",
	KwExtends:    "'extends'",
	KwImplements: "'implements'",
	KwNew:        "'new'",
	KwReturn:     "'return'",
	KwIf:         "'if'",
	KwElse:       "'else'",
	KwWhile:      "'while'",
	KwNull:       "'null'",
	KwThis:       "'this'",
	KwVoid:       "'void'",
	KwInt:        "'int'",
	LBrace:       "'{'",
	RBrace:       "'}'",
	LParen:       "'('",
	RParen:       "')'",
	Semi:         "';'",
	Comma:        "','",
	Dot:          "'.'",
	Assign:       "'='",
	EqEq:         "'=='",
	BangEq:       "'!='",
	Star:         "'*'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"class":      KwClass,
	"interface":  KwInterface,
	"extends":    KwExtends,
	"implements": KwImplements,
	"new":        KwNew,
	"return":     KwReturn,
	"if":         KwIf,
	"else":       KwElse,
	"while":      KwWhile,
	"null":       KwNull,
	"this":       KwThis,
	"void":       KwVoid,
	"int":        KwInt,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position carries location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // text for IDENT and INT
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Error is a frontend diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// ErrorList collects diagnostics; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Add appends a formatted diagnostic.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	*l = append(*l, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

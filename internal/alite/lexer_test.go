package alite

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("t", "class Foo extends Bar { int x; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwClass, IDENT, KwExtends, IDENT, LBrace, KwInt, IDENT, Semi, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("t", "= == != * . , ; ( ) { }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Assign, EqEq, BangEq, Star, Dot, Comma, Semi, LParen, RParen, LBrace, RBrace, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// a line comment
class /* inline */ A {
  /* multi
     line */ int x;
}
`
	toks, err := Tokenize("t", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwClass, IDENT, LBrace, KwInt, IDENT, Semi, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	_, err := Tokenize("t", "class A { /* oops")
	if err == nil {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestTokenizeUnexpectedChar(t *testing.T) {
	_, err := Tokenize("t", "class A @ {}")
	if err == nil {
		t.Fatal("want error for unexpected character")
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("f.alite", "class\n  Foo")
	if err != nil {
		t.Fatal(err)
	}
	if p := toks[0].Pos; p.Line != 1 || p.Col != 1 {
		t.Errorf("class at %v, want 1:1", p)
	}
	if p := toks[1].Pos; p.Line != 2 || p.Col != 3 {
		t.Errorf("Foo at %v, want 2:3", p)
	}
	if toks[1].Pos.File != "f.alite" {
		t.Errorf("file = %q", toks[1].Pos.File)
	}
}

func TestParseIntLiterals(t *testing.T) {
	tests := []struct {
		lit  string
		want int
	}{
		{"0", 0},
		{"42", 42},
		{"0x10", 16},
		{"0x7f030000", 0x7f030000},
		{"0xAbC", 0xabc},
	}
	for _, tt := range tests {
		got, err := ParseInt(tt.lit)
		if err != nil {
			t.Errorf("ParseInt(%q): %v", tt.lit, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseInt(%q) = %d, want %d", tt.lit, got, tt.want)
		}
	}
	if _, err := ParseInt("0xZZ"); err == nil {
		t.Error("want error for bad hex literal")
	}
}

func TestLexerEOFIsSticky(t *testing.T) {
	lx := NewLexer("t", "x")
	if tok := lx.Next(); tok.Kind != IDENT {
		t.Fatalf("got %s", tok)
	}
	for i := 0; i < 3; i++ {
		if tok := lx.Next(); tok.Kind != EOF {
			t.Fatalf("after end: got %s, want EOF", tok)
		}
	}
}

package alite_test

// FuzzParse: the ALite parser must never panic — malformed input yields an
// error, nothing else. Seeded with the real on-disk demo app, the paper's
// Figure 1 fragment (via the generated corpus), and grammar corner cases.

import (
	"os"
	"testing"

	"gator/internal/alite"
	"gator/internal/corpus"
)

func FuzzParse(f *testing.F) {
	if data, err := os.ReadFile("../../testdata/notepad/notepad.alite"); err == nil {
		f.Add(string(data))
	}
	// Corpus-generator seeds: a small app and the XBMC-like fanout stressor.
	for _, name := range []string{"APV", "XBMC"} {
		if spec, ok := corpus.SpecByName(name); ok {
			f.Add(corpus.Generate(spec).Source)
		}
	}
	for _, seed := range []string{
		"",
		"class A {\n}\n",
		"class A extends Activity {\n\tvoid onCreate() {\n\t\tthis.setContentView(R.layout.main);\n\t}\n}\n",
		"class A implements OnClickListener {\n\tvoid onClick(View v) {\n\t}\n}\n",
		"class A {\n\tView f(View v, int a) {\n\t\tView r = v.findViewById(a);\n\t\treturn r;\n\t}\n}\n",
		"class", "class A", "class A {", "class A {}", "{}",
		"class A {\n\tint x = ;\n}\n",
		"class A {\n\tvoid f() {\n\t\tif (x) {\n\t}\n}\n",
		"class A {\n\tvoid f() {\n\t\tView v = (ViewGroup;\n\t}\n}\n",
		"class \x00 {\n}\n",
		"// comment only\n",
		"class A {\n\tvoid f() {\n\t\tint x = R.id.;\n\t}\n}\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Any panic fails the fuzzer; an error (or success) is acceptable.
		file, err := alite.Parse("fuzz.alite", src)
		if err == nil && file == nil {
			t.Errorf("Parse returned neither file nor error")
		}
	})
}

package alite

// Recursive-descent parser for ALite.
//
// Grammar (EBNF):
//
//	File       = { ClassDecl | InterfaceDecl } .
//	ClassDecl  = "class" IDENT [ "extends" IDENT ] [ "implements" IdentList ]
//	             "{" { Member } "}" .
//	IfaceDecl  = "interface" IDENT [ "extends" IdentList ] "{" { MethodSig } "}" .
//	Member     = FieldDecl | MethodDecl | CtorDecl .
//	FieldDecl  = Type IDENT ";" .
//	MethodDecl = ( Type | "void" ) IDENT "(" Params ")" Block .
//	CtorDecl   = IDENT "(" Params ")" Block .       // IDENT = class name
//	MethodSig  = ( Type | "void" ) IDENT "(" Params ")" ";" .
//	Block      = "{" { Stmt } "}" .
//	Stmt       = LocalDecl | Assign | ExprStmt | Return | If | While .
//	LocalDecl  = Type IDENT [ "=" Expr ] ";" .
//	Assign     = Postfix "=" Expr ";" .             // Postfix must be l-value
//	ExprStmt   = Postfix ";" .                      // Postfix must be a call
//	Return     = "return" [ Expr ] ";" .
//	If         = "if" "(" Cond ")" Block [ "else" ( Block | If ) ] .
//	While      = "while" "(" Cond ")" Block .
//	Cond       = "*" | Expr ( "==" | "!=" ) "null" .
//	Expr       = "new" IDENT "(" Args ")" | "null" | INT
//	           | "R" "." ("layout"|"id") "." IDENT
//	           | "(" Type ")" Expr                  // cast
//	           | "(" Expr ")" | Postfix .
//	Postfix    = Primary { "." IDENT [ "(" Args ")" ] } .
//	Primary    = "this" | IDENT | "(" ... ")" .
//	Type       = "int" | IDENT .

// Parser parses a token stream into a *File.
type Parser struct {
	toks []Token
	pos  int
	errs ErrorList
	file string
}

// Parse tokenizes and parses one ALite source file.
func Parse(file, src string) (*File, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	f := p.parseFile()
	return f, p.errs.Err()
}

// MustParse is Parse that panics on error; for tests and embedded corpora.
func MustParse(file, src string) *File {
	f, err := Parse(file, src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token     { return p.toks[p.pos] }
func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) peekKind(n int) Kind {
	i := p.pos + n
	if i >= len(p.toks) {
		return EOF
	}
	return p.toks[i].Kind
}

func (p *Parser) next() Token {
	t := p.cur()
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errs.Add(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until one of the kinds (or EOF), for error recovery.
func (p *Parser) sync(kinds ...Kind) {
	for !p.at(EOF) {
		for _, k := range kinds {
			if p.at(k) {
				return
			}
		}
		p.next()
	}
}

func (p *Parser) parseFile() *File {
	f := &File{Name: p.file}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwClass:
			f.Decls = append(f.Decls, p.parseClass())
		case KwInterface:
			f.Decls = append(f.Decls, p.parseInterface())
		default:
			p.errs.Add(p.cur().Pos, "expected 'class' or 'interface', found %s", p.cur())
			p.sync(KwClass, KwInterface)
		}
	}
	return f
}

func (p *Parser) parseIdentList() []string {
	var names []string
	names = append(names, p.expect(IDENT).Lit)
	for p.at(Comma) {
		p.next()
		names = append(names, p.expect(IDENT).Lit)
	}
	return names
}

func (p *Parser) parseClass() *ClassDecl {
	pos := p.expect(KwClass).Pos
	d := &ClassDecl{Pos: pos, Name: p.expect(IDENT).Lit}
	if p.at(KwExtends) {
		p.next()
		d.Super = p.expect(IDENT).Lit
	}
	if p.at(KwImplements) {
		p.next()
		d.Implements = p.parseIdentList()
	}
	p.expect(LBrace)
	for !p.at(RBrace) && !p.at(EOF) {
		p.parseMember(d)
	}
	p.expect(RBrace)
	return d
}

func (p *Parser) parseInterface() *InterfaceDecl {
	pos := p.expect(KwInterface).Pos
	d := &InterfaceDecl{Pos: pos, Name: p.expect(IDENT).Lit}
	if p.at(KwExtends) {
		p.next()
		d.Extends = p.parseIdentList()
	}
	p.expect(LBrace)
	for !p.at(RBrace) && !p.at(EOF) {
		ret := p.parseType(true)
		name := p.expect(IDENT)
		m := &MethodDecl{Pos: name.Pos, Return: ret, Name: name.Lit}
		p.expect(LParen)
		m.Params = p.parseParams()
		p.expect(RParen)
		p.expect(Semi)
		d.Methods = append(d.Methods, m)
	}
	p.expect(RBrace)
	return d
}

// parseMember parses a field, method, or constructor inside class d.
func (p *Parser) parseMember(d *ClassDecl) {
	// Constructor: IDENT '(' with IDENT == class name.
	if p.at(IDENT) && p.cur().Lit == d.Name && p.peekKind(1) == LParen {
		name := p.next()
		m := &MethodDecl{
			Pos:    name.Pos,
			Return: Type{Prim: TypeVoid},
			Name:   name.Lit,
			IsCtor: true,
		}
		p.expect(LParen)
		m.Params = p.parseParams()
		p.expect(RParen)
		m.Body = p.parseBlock()
		d.Methods = append(d.Methods, m)
		return
	}
	typ := p.parseType(true)
	name := p.expect(IDENT)
	switch p.cur().Kind {
	case Semi:
		p.next()
		if !typ.IsRef() && typ.Prim != TypeInt {
			p.errs.Add(name.Pos, "field %s cannot have type %s", name.Lit, typ)
		}
		d.Fields = append(d.Fields, &FieldDecl{Pos: name.Pos, Type: typ, Name: name.Lit})
	case LParen:
		m := &MethodDecl{Pos: name.Pos, Return: typ, Name: name.Lit}
		p.next()
		m.Params = p.parseParams()
		p.expect(RParen)
		m.Body = p.parseBlock()
		d.Methods = append(d.Methods, m)
	default:
		p.errs.Add(p.cur().Pos, "expected ';' or '(' after member name, found %s", p.cur())
		p.sync(Semi, RBrace)
		if p.at(Semi) {
			p.next()
		}
	}
}

func (p *Parser) parseParams() []*Param {
	var params []*Param
	if p.at(RParen) {
		return params
	}
	for {
		typ := p.parseType(false)
		name := p.expect(IDENT)
		params = append(params, &Param{Pos: name.Pos, Type: typ, Name: name.Lit})
		if !p.at(Comma) {
			return params
		}
		p.next()
	}
}

// parseType parses a type name. allowVoid permits 'void' (return types).
func (p *Parser) parseType(allowVoid bool) Type {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		return Type{Prim: TypeInt}
	case KwVoid:
		if !allowVoid {
			p.errs.Add(p.cur().Pos, "'void' is not allowed here")
		}
		p.next()
		return Type{Prim: TypeVoid}
	case IDENT:
		return Type{Name: p.next().Lit}
	default:
		p.errs.Add(p.cur().Pos, "expected a type, found %s", p.cur())
		p.next()
		return Type{Name: "Object"}
	}
}

func (p *Parser) parseBlock() *Block {
	b := &Block{Pos: p.cur().Pos}
	p.expect(LBrace)
	for !p.at(RBrace) && !p.at(EOF) {
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(RBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case KwReturn:
		pos := p.next().Pos
		s := &ReturnStmt{Pos: pos}
		if !p.at(Semi) {
			s.Value = p.parseExpr()
		}
		p.expect(Semi)
		return s
	case KwIf:
		return p.parseIf()
	case KwWhile:
		pos := p.next().Pos
		p.expect(LParen)
		cond := p.parseCond()
		p.expect(RParen)
		return &WhileStmt{Pos: pos, Cond: cond, Body: p.parseBlock()}
	case KwInt:
		return p.parseLocalDecl(p.parseType(false))
	case IDENT:
		// Either a local declaration "Type name ..." or an assignment /
		// expression statement beginning with an identifier.
		if p.peekKind(1) == IDENT {
			return p.parseLocalDecl(p.parseType(false))
		}
		return p.parseSimpleStmt()
	case KwThis:
		return p.parseSimpleStmt()
	case Semi:
		p.next() // empty statement
		return nil
	default:
		p.errs.Add(p.cur().Pos, "expected a statement, found %s", p.cur())
		p.sync(Semi, RBrace)
		if p.at(Semi) {
			p.next()
		}
		return nil
	}
}

func (p *Parser) parseIf() Stmt {
	pos := p.expect(KwIf).Pos
	p.expect(LParen)
	cond := p.parseCond()
	p.expect(RParen)
	s := &IfStmt{Pos: pos, Cond: cond, Then: p.parseBlock()}
	if p.at(KwElse) {
		p.next()
		if p.at(KwIf) {
			elif := p.parseIf()
			s.Else = &Block{Pos: elif.StmtPos(), Stmts: []Stmt{elif}}
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *Parser) parseLocalDecl(typ Type) Stmt {
	name := p.expect(IDENT)
	s := &LocalDecl{Pos: name.Pos, Type: typ, Name: name.Lit}
	if p.at(Assign) {
		p.next()
		s.Init = p.parseExpr()
	}
	p.expect(Semi)
	return s
}

// parseSimpleStmt parses an assignment or a call expression statement.
func (p *Parser) parseSimpleStmt() Stmt {
	lhs := p.parsePostfix()
	if p.at(Assign) {
		pos := p.next().Pos
		switch t := lhs.(type) {
		case *VarExpr:
			if t.IsThis {
				p.errs.Add(lhs.ExprPos(), "cannot assign to 'this'")
			}
		case *FieldExpr:
		default:
			p.errs.Add(lhs.ExprPos(), "invalid assignment target")
		}
		s := &AssignStmt{Pos: pos, Target: lhs, Value: p.parseExpr()}
		p.expect(Semi)
		return s
	}
	if _, ok := lhs.(*CallExpr); !ok {
		p.errs.Add(lhs.ExprPos(), "expression statement must be a call")
	}
	p.expect(Semi)
	return &ExprStmt{Pos: lhs.ExprPos(), X: lhs}
}

func (p *Parser) parseCond() Cond {
	if p.at(Star) {
		return Cond{Pos: p.next().Pos, Nondet: true}
	}
	x := p.parseExpr()
	c := Cond{Pos: x.ExprPos(), X: x}
	switch p.cur().Kind {
	case EqEq:
		p.next()
	case BangEq:
		p.next()
		c.Negated = true
	default:
		p.errs.Add(p.cur().Pos, "expected '==' or '!=' in condition, found %s", p.cur())
		return c
	}
	p.expect(KwNull)
	return c
}

func (p *Parser) parseArgs() []Expr {
	p.expect(LParen)
	var args []Expr
	if !p.at(RParen) {
		args = append(args, p.parseExpr())
		for p.at(Comma) {
			p.next()
			args = append(args, p.parseExpr())
		}
	}
	p.expect(RParen)
	return args
}

func (p *Parser) parseExpr() Expr {
	switch p.cur().Kind {
	case KwNew:
		pos := p.next().Pos
		cls := p.expect(IDENT).Lit
		args := p.parseArgs()
		return p.parseSelectors(&NewExpr{Pos: pos, Class: cls, Args: args})
	case KwNull:
		return &NullExpr{Pos: p.next().Pos}
	case INT:
		t := p.next()
		v, err := ParseInt(t.Lit)
		if err != nil {
			p.errs.Add(t.Pos, "%v", err)
		}
		return &IntExpr{Pos: t.Pos, Value: v}
	case LParen:
		return p.parseParenExpr()
	default:
		return p.parsePostfix()
	}
}

// parseParenExpr handles both casts "(Type) expr" and grouping "(expr)".
// A cast is recognized when the parenthesized content is a single type name
// followed by an expression start.
func (p *Parser) parseParenExpr() Expr {
	pos := p.expect(LParen).Pos
	if p.at(KwInt) && p.peekKind(1) == RParen {
		p.next()
		p.next()
		return &CastExpr{Pos: pos, Type: Type{Prim: TypeInt}, X: p.parseExpr()}
	}
	if p.at(IDENT) && p.peekKind(1) == RParen {
		after := p.peekKind(2)
		switch after {
		case IDENT, KwThis, KwNew, KwNull, LParen, INT:
			typ := Type{Name: p.next().Lit}
			p.next() // ')'
			return &CastExpr{Pos: pos, Type: typ, X: p.parseExpr()}
		}
	}
	x := p.parseExpr()
	p.expect(RParen)
	return p.parseSelectors(x)
}

func (p *Parser) parsePostfix() Expr {
	var x Expr
	switch p.cur().Kind {
	case KwThis:
		x = &VarExpr{Pos: p.next().Pos, Name: "this", IsThis: true}
	case IDENT:
		t := p.next()
		// R.layout.name / R.id.name resource references.
		if t.Lit == "R" && p.at(Dot) {
			return p.parseRRef(t.Pos)
		}
		x = &VarExpr{Pos: t.Pos, Name: t.Lit}
	case LParen:
		return p.parseParenExpr()
	default:
		p.errs.Add(p.cur().Pos, "expected an expression, found %s", p.cur())
		p.next()
		return &NullExpr{Pos: p.cur().Pos}
	}
	return p.parseSelectors(x)
}

func (p *Parser) parseSelectors(x Expr) Expr {
	for p.at(Dot) {
		p.next()
		// Class literal: Ident.class.
		if p.at(KwClass) {
			tok := p.next()
			v, ok := x.(*VarExpr)
			if !ok || v.IsThis {
				p.errs.Add(tok.Pos, "'.class' requires a class name")
				continue
			}
			x = &ClassLitExpr{Pos: v.Pos, Name: v.Name}
			continue
		}
		name := p.expect(IDENT)
		if p.at(LParen) {
			x = &CallExpr{Pos: name.Pos, Base: x, Name: name.Lit, Args: p.parseArgs()}
		} else {
			x = &FieldExpr{Pos: name.Pos, Base: x, Name: name.Lit}
		}
	}
	return x
}

func (p *Parser) parseRRef(pos Pos) Expr {
	p.expect(Dot)
	kind := p.expect(IDENT)
	if kind.Lit != "layout" && kind.Lit != "id" && kind.Lit != "string" {
		p.errs.Add(kind.Pos, "expected 'layout', 'id', or 'string' after 'R.', found %q", kind.Lit)
	}
	p.expect(Dot)
	name := p.expect(IDENT)
	return &RRefExpr{Pos: pos, Layout: kind.Lit == "layout", Str: kind.Lit == "string", Name: name.Lit}
}

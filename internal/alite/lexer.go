package alite

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Lexer tokenizes ALite source text.
type Lexer struct {
	src  string
	file string

	off  int // byte offset of the next rune
	line int
	col  int

	errs ErrorList
}

// NewLexer returns a lexer over src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the diagnostics accumulated so far.
func (lx *Lexer) Errors() ErrorList { return lx.errs }

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *Lexer) advance() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col += w
	}
	return r
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

// skipSpaceAndComments consumes whitespace, // line comments, and /* */
// block comments.
func (lx *Lexer) skipSpaceAndComments() {
	for {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.advance()
		case r == '/':
			// Look ahead without committing.
			if lx.off+1 < len(lx.src) {
				switch lx.src[lx.off+1] {
				case '/':
					for lx.peek() != '\n' && lx.peek() != -1 {
						lx.advance()
					}
					continue
				case '*':
					start := lx.pos()
					lx.advance() // '/'
					lx.advance() // '*'
					closed := false
					for lx.peek() != -1 {
						if lx.advance() == '*' && lx.peek() == '/' {
							lx.advance()
							closed = true
							break
						}
					}
					if !closed {
						lx.errs.Add(start, "unterminated block comment")
					}
					continue
				}
			}
			return
		default:
			return
		}
	}
}

// Next returns the next token. After EOF it keeps returning EOF.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	r := lx.peek()
	switch {
	case r == -1:
		return Token{Kind: EOF, Pos: pos}
	case isIdentStart(r):
		start := lx.off
		for isIdentPart(lx.peek()) {
			lx.advance()
		}
		lit := lx.src[start:lx.off]
		if kw, ok := keywords[lit]; ok {
			return Token{Kind: kw, Pos: pos}
		}
		return Token{Kind: IDENT, Lit: lit, Pos: pos}
	case unicode.IsDigit(r):
		start := lx.off
		for unicode.IsDigit(lx.peek()) {
			lx.advance()
		}
		// Hex literals appear in generated R constants.
		if lx.off == start+1 && lx.src[start] == '0' && (lx.peek() == 'x' || lx.peek() == 'X') {
			lx.advance()
			for isHexDigit(lx.peek()) {
				lx.advance()
			}
		}
		return Token{Kind: INT, Lit: lx.src[start:lx.off], Pos: pos}
	}
	lx.advance()
	switch r {
	case '{':
		return Token{Kind: LBrace, Pos: pos}
	case '}':
		return Token{Kind: RBrace, Pos: pos}
	case '(':
		return Token{Kind: LParen, Pos: pos}
	case ')':
		return Token{Kind: RParen, Pos: pos}
	case ';':
		return Token{Kind: Semi, Pos: pos}
	case ',':
		return Token{Kind: Comma, Pos: pos}
	case '.':
		return Token{Kind: Dot, Pos: pos}
	case '*':
		return Token{Kind: Star, Pos: pos}
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: EqEq, Pos: pos}
		}
		return Token{Kind: Assign, Pos: pos}
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: BangEq, Pos: pos}
		}
		lx.errs.Add(pos, "unexpected character %q (expected '!=')", r)
		return lx.Next()
	}
	lx.errs.Add(pos, "unexpected character %q", r)
	return lx.Next()
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || ('a' <= r && r <= 'f') || ('A' <= r && r <= 'F')
}

// Tokenize scans the entire input and returns the token stream including the
// trailing EOF token.
func Tokenize(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	if err := lx.Errors().Err(); err != nil {
		return toks, err
	}
	return toks, nil
}

// ParseInt parses the literal text of an INT token.
func ParseInt(lit string) (int, error) {
	var v int
	if len(lit) > 2 && (lit[1] == 'x' || lit[1] == 'X') {
		for _, c := range lit[2:] {
			v *= 16
			switch {
			case '0' <= c && c <= '9':
				v += int(c - '0')
			case 'a' <= c && c <= 'f':
				v += int(c-'a') + 10
			case 'A' <= c && c <= 'F':
				v += int(c-'A') + 10
			default:
				return 0, fmt.Errorf("invalid hex literal %q", lit)
			}
		}
		return v, nil
	}
	for _, c := range lit {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer literal %q", lit)
		}
		v = v*10 + int(c-'0')
	}
	return v, nil
}

package alite

import (
	"fmt"
	"strings"
)

// Print renders a File back to ALite surface syntax. The output reparses to
// an equivalent AST (modulo positions), which the frontend tests verify.
func Print(f *File) string {
	var p printer
	for i, d := range f.Decls {
		if i > 0 {
			p.nl()
		}
		p.decl(d)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.nl()
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *ClassDecl:
		hdr := "class " + d.Name
		if d.Super != "" {
			hdr += " extends " + d.Super
		}
		if len(d.Implements) > 0 {
			hdr += " implements " + strings.Join(d.Implements, ", ")
		}
		p.line("%s {", hdr)
		p.indent++
		for _, f := range d.Fields {
			p.line("%s %s;", f.Type, f.Name)
		}
		for _, m := range d.Methods {
			p.method(m)
		}
		p.indent--
		p.line("}")
	case *InterfaceDecl:
		hdr := "interface " + d.Name
		if len(d.Extends) > 0 {
			hdr += " extends " + strings.Join(d.Extends, ", ")
		}
		p.line("%s {", hdr)
		p.indent++
		for _, m := range d.Methods {
			p.line("%s;", p.signature(m))
		}
		p.indent--
		p.line("}")
	}
}

func (p *printer) signature(m *MethodDecl) string {
	var parts []string
	for _, prm := range m.Params {
		parts = append(parts, fmt.Sprintf("%s %s", prm.Type, prm.Name))
	}
	if m.IsCtor {
		return fmt.Sprintf("%s(%s)", m.Name, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s(%s)", m.Return, m.Name, strings.Join(parts, ", "))
}

func (p *printer) method(m *MethodDecl) {
	if m.Body == nil {
		p.line("%s;", p.signature(m))
		return
	}
	p.line("%s {", p.signature(m))
	p.indent++
	for _, s := range m.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) block(b *Block) {
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *LocalDecl:
		if s.Init != nil {
			p.line("%s %s = %s;", s.Type, s.Name, exprString(s.Init))
		} else {
			p.line("%s %s;", s.Type, s.Name)
		}
	case *AssignStmt:
		p.line("%s = %s;", exprString(s.Target), exprString(s.Value))
	case *ExprStmt:
		p.line("%s;", exprString(s.X))
	case *ReturnStmt:
		if s.Value != nil {
			p.line("return %s;", exprString(s.Value))
		} else {
			p.line("return;")
		}
	case *IfStmt:
		p.line("if (%s) {", condString(s.Cond))
		p.block(s.Then)
		if s.Else != nil {
			p.line("} else {")
			p.block(s.Else)
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", condString(s.Cond))
		p.block(s.Body)
		p.line("}")
	}
}

func condString(c Cond) string {
	if c.Nondet {
		return "*"
	}
	op := "=="
	if c.Negated {
		op = "!="
	}
	return fmt.Sprintf("%s %s null", exprString(c.X), op)
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case *VarExpr:
		return e.Name
	case *FieldExpr:
		return exprString(e.Base) + "." + e.Name
	case *CallExpr:
		return fmt.Sprintf("%s.%s(%s)", exprString(e.Base), e.Name, argsString(e.Args))
	case *NewExpr:
		return fmt.Sprintf("new %s(%s)", e.Class, argsString(e.Args))
	case *CastExpr:
		return fmt.Sprintf("(%s) %s", e.Type, exprString(e.X))
	case *NullExpr:
		return "null"
	case *IntExpr:
		return fmt.Sprintf("%d", e.Value)
	case *RRefExpr:
		switch {
		case e.Layout:
			return "R.layout." + e.Name
		case e.Str:
			return "R.string." + e.Name
		}
		return "R.id." + e.Name
	case *ClassLitExpr:
		return e.Name + ".class"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func argsString(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = exprString(a)
	}
	return strings.Join(parts, ", ")
}

package gator

// Parallel batch analysis. The paper's evaluation (Section 5) analyzes its
// 20 applications one at a time; AnalyzeBatch fans a set of applications
// across a bounded worker pool. Per-app parallelism is safe because the
// analysis holds no cross-application state: each app gets its own
// ir.Program, constraint graph, and fixpoint solution (see DESIGN.md,
// "Batch analysis & parallelism"), so the per-app solutions are identical
// to sequential runs — a property the differential tests in batch_test.go
// verify byte-for-byte under the race detector.

import (
	"fmt"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gator/internal/metrics"
	"gator/internal/trace"
)

// BatchInput names one application of a batch. Exactly one source should be
// set, checked in this order: Load (a custom loader), Dir (a directory for
// LoadDir), or the in-memory Sources/Layouts maps (for Load).
type BatchInput struct {
	// Name labels the application in results and stats; when "" the loaded
	// app's own name is used.
	Name string
	// Load, when non-nil, supplies the application (overrides Dir/Sources).
	Load func() (*App, error)
	// Dir is an application directory, as for LoadDir.
	Dir string
	// Sources and Layouts are in-memory inputs, as for Load.
	Sources map[string]string
	Layouts map[string]string
}

// BatchOptions configure a batch run.
type BatchOptions struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Options are the per-application analysis options.
	Options Options
	// Tracer, when non-nil, instruments the whole batch: every app gets a
	// per-(app, worker) scope carrying load/analyze phase spans and the
	// solver's iteration and rule events, so a Chrome trace export renders
	// one lane per worker. Overrides Options.Trace per app.
	Tracer *trace.Tracer
	// Progress, when non-nil, is called once per completed application, in
	// completion order. Calls are serialized; the callback needs no locking.
	Progress func(ProgressEvent)
	// Cache, when non-nil, is shared across all workers: source files with
	// identical content parse once for the whole batch (corpus apps share
	// helper files heavily). It applies to Dir and Sources inputs; custom
	// Load functions manage their own caching.
	Cache *Cache
}

// ProgressEvent reports one application's completion during AnalyzeBatch.
type ProgressEvent struct {
	// Index is the input position; Done counts completed apps so far
	// (including this one) and Total the batch size.
	Index, Done, Total int
	// Name labels the app; Worker is the worker that ran it.
	Name   string
	Worker int
	// Err is the application's failure, nil on success.
	Err error
}

// AppReport is one application's outcome within a batch, in input order.
type AppReport struct {
	// Name is the application label.
	Name string
	// Result is the solution, nil when Err is set.
	Result *Result
	// Err is the application's failure: a load/build error, or a recovered
	// panic from any stage. One failing app never affects the others.
	Err error
	// Stats carries the per-stage wall-clock accounting.
	Stats metrics.AppStats
}

// BatchResult is the outcome of AnalyzeBatch.
type BatchResult struct {
	// Apps holds one report per input, in input order — independent of the
	// order in which workers completed them.
	Apps []AppReport
	// Stats summarizes the run (workers, wall, per-app stages, allocation).
	Stats metrics.BatchStats
}

// StatsJSON renders the batch accounting as machine-readable JSON that is
// byte-identical across repeated runs of the same batch (no wall-clock or
// allocation fields; see metrics.BatchStats.StableJSON). The human-readable
// timing summary stays in Stats/metrics.FormatBatch.
func (b *BatchResult) StatsJSON() ([]byte, error) {
	return b.Stats.StableJSON()
}

// Failed returns the reports that ended in error.
func (b *BatchResult) Failed() []AppReport {
	var out []AppReport
	for _, r := range b.Apps {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// AnalyzeBatch loads and analyzes every input on a bounded worker pool and
// returns per-app results in input order. Each application is fully
// isolated: its frontend, constraint graph, and fixpoint run on one worker
// with no shared mutable state, a panic in any app is recovered into that
// app's Err, and result ordering is independent of scheduling. The zero
// BatchOptions analyzes with the paper's configuration on GOMAXPROCS
// workers.
func AnalyzeBatch(inputs []BatchInput, opts BatchOptions) *BatchResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers < 1 {
		workers = 1
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()

	out := &BatchResult{Apps: make([]AppReport, len(inputs))}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				// Writing to a distinct index needs no lock and pins each
				// report to its input position.
				out.Apps[i] = analyzeOne(inputs[i], i, worker, opts)
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(ProgressEvent{
						Index:  i,
						Done:   done,
						Total:  len(inputs),
						Name:   out.Apps[i].Name,
						Worker: worker,
						Err:    out.Apps[i].Err,
					})
					progressMu.Unlock()
				}
			}
		}(w)
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	out.Stats = metrics.BatchStats{
		Workers:    workers,
		Wall:       time.Since(start),
		AllocBytes: memAfter.TotalAlloc - memBefore.TotalAlloc,
		Apps:       make([]metrics.AppStats, len(out.Apps)),
	}
	for i := range out.Apps {
		out.Stats.Apps[i] = out.Apps[i].Stats
	}
	return out
}

// batchLabel names an input for trace scopes before the app is loaded.
func batchLabel(in BatchInput, index int) string {
	switch {
	case in.Name != "":
		return in.Name
	case in.Dir != "":
		return filepath.Base(in.Dir)
	}
	return fmt.Sprintf("app%d", index)
}

// analyzeOne runs one application through the load and analyze stages,
// converting any panic into the app's error. When the batch is traced, the
// stages run under a per-(app, worker) scope so exported traces show one
// lane per worker.
func analyzeOne(in BatchInput, index, worker int, batchOpts BatchOptions) (rep AppReport) {
	opts := batchOpts.Options
	scope := batchOpts.Tracer.Scope(batchLabel(in, index), worker)
	if scope.Enabled() {
		opts.Trace = scope
	}
	rep.Name = in.Name
	rep.Stats.App = in.Name
	defer func() {
		if p := recover(); p != nil {
			rep.Result = nil
			rep.Err = fmt.Errorf("gator: %s: panic during analysis: %v\n%s", rep.Name, p, debug.Stack())
			rep.Stats.Err = rep.Err.Error()
		}
	}()

	t0 := time.Now()
	scope.Begin("load")
	var app *App
	var err error
	switch {
	case in.Load != nil:
		app, err = in.Load()
	case in.Dir != "":
		app, err = LoadDirCached(in.Dir, batchOpts.Cache)
	default:
		app, err = LoadCached(in.Sources, in.Layouts, batchOpts.Cache)
	}
	scope.End("load")
	rep.Stats.Add("load", time.Since(t0))
	if err != nil {
		rep.Err = err
		rep.Stats.Err = err.Error()
		return rep
	}
	if in.Name != "" {
		app.Name = in.Name
	} else {
		rep.Name = app.Name
		rep.Stats.App = app.Name
	}

	t0 = time.Now()
	res := app.Analyze(opts)
	rep.Stats.Add("analyze", time.Since(t0))
	rep.Stats.Iterations = res.Iterations()
	rep.Result = res
	return rep
}

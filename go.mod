module gator

go 1.22

#!/bin/sh
# Benchmark regression gate (the nightly workflow's first job; also usable
# locally). Regenerates the tracked benchmark records into OUTDIR (default:
# a temp directory) and diffs them against the checked-in BENCH_*.json with
# cmd/benchdiff, failing on >15% regression — or, for the incremental
# record, on a warm/cold speedup below 5x, for the server record, on a
# warm-session speedup below 3x, and for the solver record, on an
# optimized-vs-reference speedup below 2x, a sharded engine slower than the
# reference schedule, or a >64-unit incremental speedup below 5x. The
# precision record (BENCH_7.json, gatorbench -precjson) is gated tighter:
# any soundness violation fails, a per-mode solution/oracle ratio may not
# grow more than 5%, and the polymorphic-helper stressor must stay strictly
# smaller under context sensitivity. The observability record (BENCH_8.json,
# gatorbench -obsjson) fails when the telemetry layer's request-latency
# overhead exceeds its 5% ceiling. The cluster record (BENCH_9.json,
# gatorbench -clusterjson) is floor/ceiling-gated only (its ratios compare
# runs on the same box, so a baseline-relative threshold would trip on
# runner noise): 4-replica throughput scaling must stay at or above 1.5x a
# single replica, the mid-run replica-kill experiment must recover every
# request (zero failures, at least one session re-create), and the failover
# p99 must stay under its 2s ceiling. The lifecycle-recall record
# (BENCH_10.json, gatorbench -lifejson) is also floor-gated: every ordering
# checker must keep recall >= 0.9 over the synthesized scenario pack and
# produce zero findings on the clean twins (any clean-twin finding is a
# false positive by construction).
#
# Usage: scripts/benchdiff.sh [OUTDIR]
#   Pass an OUTDIR to keep the regenerated records around (CI uploads them
#   as artifacts when the gate fails).
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-}"
if [ -z "$OUT" ]; then
    OUT=$(mktemp -d)
    trap 'rm -rf "$OUT"' EXIT
else
    mkdir -p "$OUT"
fi

echo "== regenerating benchmark records into $OUT"
go run ./cmd/gatorbench -table 2 -benchjson "$OUT/BENCH_2.json" -incjson "$OUT/BENCH_4.json" \
    -servejson "$OUT/BENCH_5.json" -solvejson "$OUT/BENCH_6.json" \
    -precjson "$OUT/BENCH_7.json" -obsjson "$OUT/BENCH_8.json" \
    -clusterjson "$OUT/BENCH_9.json" -lifejson "$OUT/BENCH_10.json" > /dev/null

echo "== diff vs checked-in records (threshold 15%; precision ratio 5%; telemetry overhead 5%)"
go run ./cmd/benchdiff BENCH_2.json "$OUT/BENCH_2.json"
go run ./cmd/benchdiff BENCH_4.json "$OUT/BENCH_4.json"
go run ./cmd/benchdiff BENCH_5.json "$OUT/BENCH_5.json"
go run ./cmd/benchdiff BENCH_6.json "$OUT/BENCH_6.json"
go run ./cmd/benchdiff BENCH_7.json "$OUT/BENCH_7.json"
go run ./cmd/benchdiff BENCH_8.json "$OUT/BENCH_8.json"
go run ./cmd/benchdiff BENCH_9.json "$OUT/BENCH_9.json"
go run ./cmd/benchdiff BENCH_10.json "$OUT/BENCH_10.json"

echo "== benchdiff gate green"

#!/bin/sh
# Tier-1 CI gate (see README.md, "Testing & CI"). Every PR must keep this
# green:
#
#   1. go vet        — static checks
#   2. go build      — everything compiles
#   3. go test       — the full suite, including the differential solver
#                      harness (every optimized engine byte-identical to the
#                      reference schedule; internal/core/differential_test.go),
#                      the differential batch-determinism tests, example smoke
#                      tests, and checked-in fuzz regression seeds
#   4. go test -race — the race detector, which is what makes the parallel
#                      batch engine's and the sharded solver's "identical to
#                      sequential" guarantees verified properties. The full
#                      run covers every package; -short covers only the
#                      packages whose tests actually exercise concurrency
#                      (the root package's batch engine and watch loop,
#                      internal/core's sharded fixpoint, the
#                      content-addressed cache, the metrics/trace registries,
#                      the debounced watcher, and the gatord serving layer) —
#                      re-running the purely sequential packages under the
#                      race detector would duplicate step 3 at ~10x the cost
#                      for no signal. CI runs the full sweep as its own job
#                      (see .github/workflows/ci.yml).
#   5. gofmt -l      — all sources formatted
#   6. self-check    — `gator -checks` over examples/buggyapp must exit 1
#                      and byte-match the checked-in expected output; the
#                      ordering checkers get the same treatment over
#                      examples/lifecycleapp via `-only "lifecycle-*"` (the
#                      glob also keeps driver pattern selection wired)
#   7. trace smoke   — `gator -trace -explain` over examples/buggyapp must
#                      exit 0: tracing and provenance stay wired end-to-end
#   8. server smoke  — `gatord -smoke -replica smoke-r0` boots the daemon on
#                      a loopback port, runs one cold and one incremental
#                      session request (both byte-compared against local
#                      analysis), then exercises the telemetry surface —
#                      scrapes /metrics, validates it as Prometheus text
#                      with the in-repo parser, runs a ?trace=1 request, and
#                      fetches the captured solver trace by its trace id —
#                      verifies the daemon reports its replica identity, then
#                      drains and shuts down cleanly
#   9. no-alloc      — BenchmarkSolveTracingDisabled asserts that disabled
#                      tracing adds zero allocations to the solver
#  10. ctx smoke     — `gatorbench -table precision -ctx 1cfa` over one small
#                      corpus app: the context-sensitive solver stays sound
#                      against the oracle (the command exits nonzero on any
#                      soundness violation) and stays wired into the CLI
#  11. gatorbench    — regenerate BENCH_2.json, BENCH_4.json, BENCH_5.json,
#                      BENCH_6.json, BENCH_7.json, BENCH_8.json,
#                      BENCH_9.json, and BENCH_10.json (skipped with -short);
#                      scripts/benchdiff.sh diffs regenerated records against
#                      the checked-in ones without overwriting them.
#                      BENCH_10.json is the lifecycle-checker recall record:
#                      per-checker recall over synthesized ordering-bug
#                      scenarios plus clean-twin false-positive counts
#  12. cluster smoke — `gatorproxy -smoke` boots a real 2-replica cluster on
#                      loopback (two in-process gatord replicas behind the
#                      routing proxy), byte-compares cold and warm-session
#                      reports against local analysis, proves a non-owning
#                      replica replays the owner's solve through the shared
#                      content-addressed tier, kills the session's replica
#                      and recovers through the client's 404 → re-create
#                      path, and validates the rolled-up /metrics (parsed
#                      with the in-repo Prometheus parser; every replica
#                      series labeled). Each replica's request log lands in
#                      cluster-smoke-logs/, which CI uploads as a failure
#                      artifact.
#
# Usage: scripts/ci.sh [-short]
#   -short trims the corpus-wide tests for a quick local signal.
set -eu

cd "$(dirname "$0")/.."

SHORT=""
if [ "${1:-}" = "-short" ]; then
    SHORT="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test $SHORT ./..."
go test $SHORT ./...

RACE_PKGS="./..."
if [ -n "$SHORT" ]; then
    # The packages with concurrent tests; see the step 4 note above.
    RACE_PKGS=". ./internal/core ./internal/cache ./internal/metrics ./internal/trace ./internal/watch ./internal/server ./internal/cluster ./internal/lifecycle ./internal/corpus"
fi
echo "== go test -race $SHORT $RACE_PKGS"
go test -race $SHORT $RACE_PKGS

echo "== gofmt -l"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== gator -checks self-check (examples/buggyapp)"
CHECKS_OUT=$(mktemp)
trap 'rm -f "$CHECKS_OUT"' EXIT
if go run ./cmd/gator -checks examples/buggyapp > "$CHECKS_OUT"; then
    echo "self-check: expected exit 1 on the buggy app, got 0" >&2
    exit 1
fi
diff -u examples/buggyapp/expected_checks.txt "$CHECKS_OUT"

echo "== gator -checks ordering self-check (examples/lifecycleapp)"
if go run ./cmd/gator -checks -only "lifecycle-*" examples/lifecycleapp > "$CHECKS_OUT"; then
    echo "self-check: expected exit 1 on the lifecycle app, got 0" >&2
    exit 1
fi
diff -u examples/lifecycleapp/expected_checks.txt "$CHECKS_OUT"

echo "== ordering explain smoke (examples/lifecycleapp)"
go run ./cmd/gator -explain order:Main.onDestroy.onResume examples/lifecycleapp > /dev/null

echo "== trace + explain smoke (examples/buggyapp)"
go run ./cmd/gator -trace /dev/null -explain Main.onCreate.btn examples/buggyapp > /dev/null

echo "== gatord server smoke (examples/buggyapp)"
go run ./cmd/gatord -smoke -replica smoke-r0 examples/buggyapp

echo "== zero-allocation guard (tracing disabled)"
go test -run TestTracingDisabledZeroAlloc -bench BenchmarkSolveTracingDisabled -benchtime 1x ./internal/core

echo "== context-sensitivity precision smoke (TippyTipper, 1cfa)"
go run ./cmd/gatorbench -table precision -app TippyTipper -ctx 1cfa > /dev/null

if [ -z "$SHORT" ]; then
    echo "== gatorbench BENCH_2.json + BENCH_4.json + BENCH_5.json + BENCH_6.json + BENCH_7.json + BENCH_8.json + BENCH_9.json + BENCH_10.json"
    go run ./cmd/gatorbench -benchjson BENCH_2.json -incjson BENCH_4.json -servejson BENCH_5.json \
        -solvejson BENCH_6.json -precjson BENCH_7.json -obsjson BENCH_8.json \
        -clusterjson BENCH_9.json -lifejson BENCH_10.json > /dev/null
fi

echo "== gatorproxy cluster smoke (examples/buggyapp, 2 replicas)"
rm -rf cluster-smoke-logs
go run ./cmd/gatorproxy -smoke -smoke-logs cluster-smoke-logs examples/buggyapp

echo "== CI gate green"

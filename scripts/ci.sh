#!/bin/sh
# Tier-1 CI gate (see README.md, "Testing & CI"). Every PR must keep this
# green:
#
#   1. go vet        — static checks
#   2. go build      — everything compiles
#   3. go test       — the full suite, including the differential
#                      batch-determinism tests, example smoke tests, and
#                      checked-in fuzz regression seeds
#   4. go test -race — the same suite under the race detector, which is
#                      what makes the parallel batch engine's "identical to
#                      sequential" guarantee a verified property
#
# Usage: scripts/ci.sh [-short]
#   -short trims the corpus-wide tests for a quick local signal.
set -eu

cd "$(dirname "$0")/.."

SHORT=""
if [ "${1:-}" = "-short" ]; then
    SHORT="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test $SHORT ./..."
go test $SHORT ./...

echo "== go test -race $SHORT ./..."
go test -race $SHORT ./...

echo "== CI gate green"

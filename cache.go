package gator

import (
	"fmt"

	"gator/internal/cache"
)

// Cache is shared analysis state that survives across loads and apps: a
// content-addressed parse cache (identical source files parse once, even
// across different applications in a batch). Create one with NewCache and
// pass it to LoadCached, LoadDirCached, AnalyzeIncremental, or
// BatchOptions.Cache. Safe for concurrent use.
type Cache struct {
	parse *cache.ParseCache
}

// NewCache creates an empty cache with the default capacity.
func NewCache() *Cache {
	return &Cache{parse: cache.NewParseCache(0)}
}

// ParseStats returns the cumulative parse-cache hit and miss counts.
func (c *Cache) ParseStats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.parse.Stats()
}

// CacheTag renders the semantically relevant analysis options as a stable
// string, for use as the options component of a cache.AppFingerprint: two
// runs whose tags differ may compute different solutions and must not share
// cached outputs. Provenance and tracing are excluded — they do not change
// the solution.
func (o Options) CacheTag() string {
	return fmt.Sprintf("casts=%t shared=%t nofv3=%t declared=%t ctx1=%t ctx=%s",
		o.FilterCasts, o.SharedInflation, o.NoFindView3Refinement,
		o.DeclaredDispatchOnly, o.Context1, o.ContextSensitivity)
}

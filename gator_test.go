package gator

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gator/internal/corpus"
)

func figure1App(t *testing.T) *App {
	t.Helper()
	app, err := Load(
		map[string]string{"connectbot.alite": corpus.Figure1Source},
		map[string]string{
			"act_console":   corpus.Figure1ActConsoleXML,
			"item_terminal": corpus.Figure1ItemTerminalXML,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	app.Name = "ConnectBot-Fig1"
	return app
}

func TestLoadAndAnalyzeFigure1(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	if res.Iterations() < 2 {
		t.Errorf("iterations = %d", res.Iterations())
	}
	views := res.Views()
	if len(views) != 7 {
		t.Fatalf("views = %d, want 7 (6 inflated + 1 allocated)", len(views))
	}
	byOrigin := map[string]View{}
	for _, v := range views {
		byOrigin[v.Origin] = v
	}
	flip, ok := byOrigin["layout:act_console:1"]
	if !ok || flip.Class != "ViewFlipper" || flip.ID != "console_flip" {
		t.Errorf("flipper view = %+v", flip)
	}
}

func TestVarViews(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	views, err := res.VarViews("ConsoleActivity", "onCreate", "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Class != "ImageView" {
		t.Errorf("VarViews(g) = %+v", views)
	}
	if _, err := res.VarViews("Nope", "m", "x"); err == nil {
		t.Error("want error for unknown class")
	}
	if _, err := res.VarViews("ConsoleActivity", "onCreate", "zzz"); err == nil {
		t.Error("want error for unknown var")
	}
}

func TestEventTuples(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	tuples := res.EventTuples()
	if len(tuples) == 0 {
		t.Fatal("no event tuples")
	}
	found := false
	for _, tu := range tuples {
		if tu.Activity == "ConsoleActivity" && tu.Event == "click" &&
			tu.Handler == "EscapeButtonListener.onClick" && tu.View.Class == "ImageView" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing ESC-button tuple; got %+v", tuples)
	}
}

func TestActivitiesAndHierarchy(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	acts := res.Activities()
	if len(acts) != 1 || acts[0].Activity != "ConsoleActivity" || len(acts[0].Roots) != 1 {
		t.Fatalf("activities = %+v", acts)
	}
	edges := res.Hierarchy()
	if len(edges) < 6 {
		t.Errorf("hierarchy edges = %d, want >= 6", len(edges))
	}
}

func TestExploreSoundness(t *testing.T) {
	app, err := Load(
		map[string]string{"cb.alite": corpus.Figure1Source + figure1ClosedExtra(t)},
		map[string]string{
			"act_console":   corpus.Figure1ActConsoleXML,
			"item_terminal": corpus.Figure1ItemTerminalXML,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})
	rep := res.Explore(7)
	if !rep.Sound {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.ObservedSites == 0 || rep.Steps == 0 {
		t.Errorf("report = %+v", rep)
	}
}

// figure1ClosedExtra returns just the companion listener of the closed
// variant (without the onCreate modification, the interpreter still covers
// most sites).
func figure1ClosedExtra(t *testing.T) string {
	return `
class OpenTerminalListener2 implements OnClickListener {
	ConsoleActivity owner;
	OpenTerminalListener2(ConsoleActivity a) { this.owner = a; }
	void onClick(View w) {
		ConsoleActivity a = this.owner;
		TerminalBridge bridge = new TerminalBridge();
		a.addNewTerminalView(bridge);
	}
}`
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "app.alite"), []byte(corpus.Figure1Source), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "layout")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "act_console.xml"), []byte(corpus.Figure1ActConsoleXML), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "item_terminal.xml"), []byte(corpus.Figure1ItemTerminalXML), 0o644); err != nil {
		t.Fatal(err)
	}
	app, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})
	row := res.Table1()
	if row.LayoutIDs != 2 || row.ViewIDs != 4 {
		t.Errorf("table1 = %+v", row)
	}

	if _, err := LoadDir(filepath.Join(dir, "nonexistent")); err == nil {
		t.Error("want error for missing dir")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("want error for empty dir")
	}
}

// TestNotepadEndToEnd drives the checked-in demo application through the
// whole public API: load from disk, analyze, query every report, check,
// and validate against the dynamic oracle.
func TestNotepadEndToEnd(t *testing.T) {
	app, err := LoadDir("testdata/notepad")
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})

	t1 := res.Table1()
	if t1.Classes != 5 || t1.LayoutIDs != 3 {
		t.Errorf("table1 = %+v", t1)
	}

	// Both activities have content; the list holds adapter rows.
	acts := res.Activities()
	if len(acts) != 2 {
		t.Fatalf("activities = %+v", acts)
	}

	// Transitions: list -> editor from both the listener and the
	// declarative shortcut.
	trs := res.Transitions()
	if len(trs) == 0 {
		t.Fatal("no transitions")
	}
	for _, tr := range trs {
		if tr.Source != "NoteListActivity" || tr.Target != "EditNoteActivity" {
			t.Errorf("transition = %+v", tr)
		}
	}

	// Menu model.
	menus := res.MenuEntries()
	if len(menus) != 2 {
		t.Errorf("menus = %+v", menus)
	}

	// Event tuples include the declarative shortcut.
	foundShortcut := false
	for _, tu := range res.EventTuples() {
		if tu.Handler == "NoteListActivity.openEditor" {
			foundShortcut = true
		}
	}
	if !foundShortcut {
		t.Error("declarative onClick tuple missing")
	}

	// The checkers find nothing alarming.
	for _, f := range res.Check() {
		if f.Severity == "warning" {
			t.Errorf("unexpected warning: %+v", f)
		}
	}

	// Dynamic validation.
	for seed := int64(1); seed <= 3; seed++ {
		rep := res.Explore(seed)
		if !rep.Sound {
			t.Fatalf("seed %d violations: %v", seed, rep.Violations)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(map[string]string{"x.alite": "class {"}, nil); err == nil {
		t.Error("want parse error")
	}
	if _, err := Load(map[string]string{"x.alite": "class A extends Zorp { }"}, nil); err == nil {
		t.Error("want resolve error")
	}
	if _, err := Load(map[string]string{"x.alite": "class A { }"},
		map[string]string{"bad": "<"}); err == nil {
		t.Error("want layout parse error")
	}
}

func TestTransitionsAPI(t *testing.T) {
	src := `
class Second extends Activity { void onCreate() { } }
class First extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
	}
	void next(View v) {
		Intent i = new Intent(Second.class);
		this.startActivity(i);
	}
}`
	app, err := Load(map[string]string{"a.alite": src},
		map[string]string{"main": `<LinearLayout><Button android:onClick="next"/></LinearLayout>`})
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})
	trs := res.Transitions()
	if len(trs) != 1 {
		t.Fatalf("transitions = %+v", trs)
	}
	if trs[0].Source != "First" || trs[0].Target != "Second" || trs[0].Via != "First.next" {
		t.Errorf("transition = %+v", trs[0])
	}
	rep := res.Explore(2)
	if !rep.Sound {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestCheckAPI(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.x);
	}
}`
	app, err := Load(map[string]string{"a.alite": src},
		map[string]string{"main": `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`})
	if err != nil {
		t.Fatal(err)
	}
	findings := app.Analyze(Options{}).Check()
	hasMissing := false
	for _, f := range findings {
		if f.Check == "missing-content-view" && f.Severity == "warning" {
			hasMissing = true
			if f.Pos == "" {
				t.Error("finding has no position")
			}
		}
	}
	if !hasMissing {
		t.Errorf("missing-content-view not reported: %+v", findings)
	}

	// The Figure 1 closed app is warning-free through the API too.
	clean := figure1App(t).Analyze(Options{})
	for _, f := range clean.Check() {
		if f.Severity == "warning" && f.Check != "unfired-handler" {
			t.Errorf("unexpected warning on Figure 1: %+v", f)
		}
	}
}

func TestExplainVarAPI(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	lines, err := res.ExplainVar("ConsoleActivity", "findCurrentView", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "FindView1") {
		t.Errorf("explain = %v", lines)
	}
	if _, err := res.ExplainVar("Nope", "m", "x"); err == nil {
		t.Error("want error for unknown class")
	}
	if _, err := res.ExplainVar("ConsoleActivity", "findCurrentView", "zzz"); err == nil {
		t.Error("want error for unknown variable")
	}
}

func TestExplainOrderingAPI(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	tree, err := res.ExplainOrdering("ConsoleActivity", "onPause", "onResume")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree, "[Lifestate]") || !strings.Contains(tree, "onResume") ||
		!strings.Contains(tree, "[Rule]") {
		t.Errorf("ordering justification missing derivation structure:\n%s", tree)
	}
	tree, err = res.ExplainOrdering("ConsoleActivity", "onDestroy", "onResume")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree, "= false") || !strings.Contains(tree, "absorbing") {
		t.Errorf("impossible ordering should render a refutation:\n%s", tree)
	}
	if _, err := res.ExplainOrdering("Nope", "onPause", "onResume"); err == nil {
		t.Error("want error for a non-component class")
	}
	if _, err := res.ExplainOrdering("ConsoleActivity", "onPause", "onFrobnicate"); err == nil {
		t.Error("want error for an unknown callback")
	}
}

func TestMenuEntriesAPI(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() { }
	void onCreateOptionsMenu(Menu menu) {
		MenuItem a = menu.add(R.id.save);
		MenuItem b = menu.add(R.id.quit);
	}
	void onOptionsItemSelected(MenuItem item) { }
}`
	app, err := Load(map[string]string{"a.alite": src}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})
	entries := res.MenuEntries()
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Activity != "A" || entries[0].Handler != "A.onOptionsItemSelected" {
		t.Errorf("entry = %+v", entries[0])
	}
	ids := map[string]bool{entries[0].ItemID: true, entries[1].ItemID: true}
	if !ids["save"] || !ids["quit"] {
		t.Errorf("ids = %v", ids)
	}
	rep := res.Explore(1)
	if !rep.Sound {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestDotAndDumpIR(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	dot := res.Dot()
	if !strings.HasPrefix(dot, "digraph gator {") {
		t.Errorf("Dot output malformed: %.60q", dot)
	}
	irDump := res.DumpIR()
	for _, want := range []string{"class ConsoleActivity", "class EscapeButtonListener", ":= new TerminalView"} {
		if !strings.Contains(irDump, want) {
			t.Errorf("DumpIR missing %q", want)
		}
	}
}

func TestTable2Metrics(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	row := res.Table2()
	if row.AvgReceivers < 1.0 {
		t.Errorf("receivers = %v", row.AvgReceivers)
	}
	if !row.HasAddView {
		t.Error("Figure 1 has AddView ops")
	}
	if row.AvgListeners != 1.0 {
		t.Errorf("listeners = %v, want 1.0", row.AvgListeners)
	}
}

func TestLoadDirUppercaseExtensions(t *testing.T) {
	dir := t.TempDir()
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.x);
	}
}`
	if err := os.WriteFile(filepath.Join(dir, "app.alite"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Uppercase layout extension must still load as layout "main".
	xml := `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`
	if err := os.WriteFile(filepath.Join(dir, "main.XML"), []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	app, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})
	for _, f := range res.Check() {
		if f.Check == "missing-content-view" || f.Check == "dangling-findview" {
			t.Errorf("main.XML was not loaded as a layout: %+v", f)
		}
	}
}

func TestLoadDirSurfacesReadErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "app.alite"), []byte("class A { }"), 0o644); err != nil {
		t.Fatal(err)
	}
	// layout as a *file* makes the subdirectory read fail with something
	// other than fs.ErrNotExist; the error must surface and name the path.
	if err := os.WriteFile(filepath.Join(dir, "layout"), []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("want error for unreadable layout entry")
	}
	if !strings.Contains(err.Error(), filepath.Join(dir, "layout")) {
		t.Errorf("error does not name the offending path: %v", err)
	}
}

func TestCheckDeterministicTiebreak(t *testing.T) {
	// Both dangling-findview and missing-content-view report at the same
	// findViewById position: the (Pos, Check, Msg) order must break the tie
	// by check name, identically on every run.
	src := `
class A extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.x);
	}
}`
	app, err := Load(map[string]string{"a.alite": src},
		map[string]string{"main": `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`})
	if err != nil {
		t.Fatal(err)
	}
	var first []CheckFinding
	for i := 0; i < 25; i++ {
		fs := app.Analyze(Options{}).Check()
		if i == 0 {
			first = fs
			samePos := 0
			for j := 1; j < len(fs); j++ {
				if fs[j].Pos == fs[j-1].Pos && fs[j].Pos != "" {
					samePos++
					if fs[j-1].Check > fs[j].Check {
						t.Errorf("tie not broken by check name: %s before %s", fs[j-1].Check, fs[j].Check)
					}
				}
			}
			if samePos == 0 {
				t.Error("test app no longer produces findings at one position")
			}
			continue
		}
		if len(fs) != len(first) {
			t.Fatalf("run %d: %d findings, first run had %d", i, len(fs), len(first))
		}
		for j := range fs {
			if fs[j] != first[j] {
				t.Fatalf("run %d: finding %d = %+v, first run had %+v", i, j, fs[j], first[j])
			}
		}
	}
}

func TestCheckReportAPI(t *testing.T) {
	src := `
class Main extends Activity {
	void onCreate() {
		View early = this.findViewById(R.id.root);
		this.setContentView(R.layout.main);
		View gone = this.findViewById(R.id.gone);
		gone.setId(R.id.root);
	}
}`
	app, err := Load(map[string]string{"app.alite": src}, map[string]string{
		"main":  `<LinearLayout android:id="@+id/root"/>`,
		"other": `<LinearLayout android:id="@+id/gone"/>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})

	rep, err := res.CheckReport()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"findview-before-setcontentview": false, "null-view-deref": false}
	for _, f := range rep.Findings {
		if _, ok := want[f.Check]; ok {
			want[f.Check] = true
			if f.Pos == "" || f.SuggestedFix == "" {
				t.Errorf("finding incomplete: %+v", f)
			}
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("missing %s in %+v", id, rep.Findings)
		}
	}
	if rep.Warnings() == 0 || len(rep.Passes) == 0 {
		t.Errorf("warnings = %d, passes = %d", rep.Warnings(), len(rep.Passes))
	}
	if out := rep.PassTimings(); !strings.Contains(out, "null-view-deref") {
		t.Errorf("pass timings = %q", out)
	}

	sarif, err := rep.SARIF()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"version": "2.1.0"`, `"ruleId"`, `"startLine"`, `"gator"`} {
		if !strings.Contains(string(sarif), frag) {
			t.Errorf("SARIF misses %s", frag)
		}
	}

	// Selection narrows the run; unknown names fail loudly.
	only, err := res.CheckReport("null-view-deref")
	if err != nil {
		t.Fatal(err)
	}
	if len(only.Passes) != 1 {
		t.Errorf("passes = %+v", only.Passes)
	}
	if _, err := res.CheckReport("bogus"); err == nil {
		t.Error("unknown check accepted")
	}
}

func TestCheckSuppressionAPI(t *testing.T) {
	src := `
class Main extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View gone = this.findViewById(R.id.gone);
		gone.setId(R.id.root); // gator:disable null-view-deref
	}
}`
	app, err := Load(map[string]string{"app.alite": src}, map[string]string{
		"main":  `<LinearLayout android:id="@+id/root"/>`,
		"other": `<LinearLayout android:id="@+id/gone"/>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := app.Analyze(Options{}).CheckReport("null-view-deref")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 || rep.Suppressed != 1 {
		t.Errorf("findings = %+v, suppressed = %d", rep.Findings, rep.Suppressed)
	}
}

func TestListChecksAndTable(t *testing.T) {
	list := ListChecks()
	table := CheckTable()
	for _, id := range []string{"dangling-findview", "null-view-deref", "listener-reset", "findview-before-setcontentview"} {
		if !strings.Contains(list, id) {
			t.Errorf("ListChecks misses %s", id)
		}
		if !strings.Contains(table, "`"+id+"`") {
			t.Errorf("CheckTable misses %s", id)
		}
	}
}

// TestReadmeCheckerTable pins the README's generated checker table to the
// live registry: edit the pass Docs, regenerate the block between the
// markers with CheckTable(), or this fails.
func TestReadmeCheckerTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	begin, end := "<!-- checks:begin -->\n", "<!-- checks:end -->"
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatal("README.md checker-table markers missing")
	}
	got := s[i+len(begin) : j]
	if want := CheckTable(); got != want {
		t.Errorf("README checker table is stale; regenerate from CheckTable().\n--- README ---\n%s--- registry ---\n%s", got, want)
	}
}

// TestLoadDirDeterministicOrder: LoadDir pins the combined file order of the
// app directory and its layout/ subdirectory by sorting full paths, so the
// duplicate-name overwrite order (and with it the whole analysis, whose node
// numbering follows load order) cannot depend on filesystem enumeration.
// "layout/main.xml" sorts before "main.xml", so the root-directory file wins
// a basename collision.
func TestLoadDirDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "app.alite"),
		[]byte("class A extends Activity {\n\tvoid onCreate() {\n\t\tthis.setContentView(R.layout.main);\n\t}\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "layout")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	// The same layout name in both places, with different view ids.
	if err := os.WriteFile(filepath.Join(sub, "main.xml"),
		[]byte(`<LinearLayout android:id="@+id/from_subdir"/>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.xml"),
		[]byte(`<LinearLayout android:id="@+id/from_root"/>`), 0o644); err != nil {
		t.Fatal(err)
	}

	var first []byte
	for i := 0; i < 3; i++ {
		app, err := LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		res := app.Analyze(Options{})
		m := res.Model()
		m.Elapsed = ""
		data, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = data
			if !strings.Contains(string(data), "from_root") || strings.Contains(string(data), "from_subdir") {
				t.Errorf("root-directory layout should win the collision:\n%s", data)
			}
			continue
		}
		if !bytes.Equal(data, first) {
			t.Errorf("LoadDir order drifted between runs:\nrun 0:\n%s\nrun %d:\n%s", first, i, data)
		}
	}
}

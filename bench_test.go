package gator

// Benchmark harness for the paper's evaluation (Section 5). One benchmark
// per table/figure:
//
//   - BenchmarkFigure1Analysis — the running example of Figures 1/3/4:
//     constraint graph construction and fixpoint solving.
//   - BenchmarkTable1/<app> — per-application frontend + graph construction
//     (the feature counts of Table 1 are measured from this result).
//   - BenchmarkTable2/<app> — per-application full analysis (the running
//     times of Table 2).
//   - BenchmarkCaseStudy/<app> — the Section 5 case study: dynamic
//     exploration plus oracle comparison.
//   - BenchmarkAblation* — the design-choice ablations listed in DESIGN.md.
//
// Regenerate the actual tables with: go run ./cmd/gatorbench -table all

import (
	"fmt"
	"runtime"
	"testing"

	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/interp"
	"gator/internal/ir"
	"gator/internal/metrics"
	"gator/internal/oracle"
)

// builtApps caches resolved programs for the corpus (building once keeps
// the per-iteration work equal to what each table measures).
var builtApps = func() map[string]*ir.Program {
	out := map[string]*ir.Program{}
	for _, app := range corpus.GenerateAll() {
		prog, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
		if err != nil {
			panic(err)
		}
		out[app.Name] = prog
	}
	return out
}()

func BenchmarkFigure1Analysis(b *testing.B) {
	prog, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Analyze(prog, core.Options{})
		if len(res.Graph.Infls()) != 6 {
			b.Fatalf("inflation nodes = %d", len(res.Graph.Infls()))
		}
	}
}

// BenchmarkTable1 measures the cost of producing each application's Table 1
// row: frontend (parse + resolve + lower) and graph construction.
func BenchmarkTable1(b *testing.B) {
	for _, app := range corpus.GenerateAll() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
				if err != nil {
					b.Fatal(err)
				}
				res := core.Analyze(prog, core.Options{})
				row := metrics.Table1(app.Name, res)
				if row.Classes != app.Spec.Classes {
					b.Fatalf("classes = %d, want %d", row.Classes, app.Spec.Classes)
				}
			}
		})
	}
}

// BenchmarkTable2 measures each application's analysis time (the Table 2
// "Time" column); the per-op averages are validated against the corpus
// specs as a side effect.
func BenchmarkTable2(b *testing.B) {
	for _, spec := range corpus.Table1Specs() {
		spec := spec
		prog := builtApps[spec.Name]
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			var row metrics.Table2Row
			for i := 0; i < b.N; i++ {
				res := core.Analyze(prog, core.Options{})
				row = metrics.Table2(spec.Name, res, 0)
			}
			// The receivers average must stay near the paper's value.
			if diff := row.AvgReceivers - spec.TargetReceivers; diff > 1.0 || diff < -1.0 {
				b.Fatalf("receivers = %.2f, paper reports %.2f", row.AvgReceivers, spec.TargetReceivers)
			}
			b.ReportMetric(row.AvgReceivers, "receivers")
		})
	}
}

// BenchmarkCaseStudy runs the Section 5 case-study pipeline (analysis,
// seeded exploration, oracle comparison) for the applications the paper
// examined by hand, plus the XBMC outlier.
func BenchmarkCaseStudy(b *testing.B) {
	for _, name := range []string{"APV", "BarcodeScanner", "SuperGenPass", "XBMC"} {
		name := name
		prog := builtApps[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Analyze(prog, core.Options{})
				obs := interp.New(prog, interp.Config{Seed: 1}).Run()
				rep := oracle.Compare(res, obs)
				if !rep.Sound() {
					b.Fatalf("%s: %d violations", name, len(rep.Violations))
				}
			}
		})
	}
}

// Ablation benchmarks: each compares one design choice on a mid-size app.
func benchAblation(b *testing.B, opts core.Options) {
	prog := builtApps["K9"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Analyze(prog, opts)
	}
}

func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b, core.Options{}) }

func BenchmarkAblationCastFilter(b *testing.B) {
	benchAblation(b, core.Options{FilterCasts: true})
}

func BenchmarkAblationSharedInflation(b *testing.B) {
	benchAblation(b, core.Options{SharedInflation: true})
}

func BenchmarkAblationNoFindView3Refinement(b *testing.B) {
	benchAblation(b, core.Options{NoFindView3Refinement: true})
}

func BenchmarkAblationDeclaredDispatch(b *testing.B) {
	benchAblation(b, core.Options{DeclaredDispatchOnly: true})
}

func BenchmarkAblationContext1(b *testing.B) {
	benchAblation(b, core.Options{Context1: true})
}

// BenchmarkBatch measures AnalyzeBatch over the full 20-app corpus at one
// worker versus a full worker pool — the parallel-speedup evidence for the
// batch engine (run on a multi-core machine; j1 and jN coincide on one
// core). Inputs are pre-rendered so only the engine is on the clock.
func BenchmarkBatch(b *testing.B) {
	inputs := corpusInputs(corpus.GenerateAll())
	widths := []int{1, runtime.GOMAXPROCS(0)}
	if widths[1] == 1 {
		widths[1] = 4 // still exercise pool scheduling on a single core
	}
	for _, j := range widths {
		j := j
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				br := AnalyzeBatch(inputs, BatchOptions{Workers: j})
				if failed := br.Failed(); len(failed) > 0 {
					b.Fatalf("%s: %v", failed[0].Name, failed[0].Err)
				}
			}
			b.ReportMetric(float64(j), "workers")
		})
	}
}

// Solver-engine benchmarks on the 501-unit chain-shaped modular app, whose
// ~26-iteration fixpoint is deep enough that the engine choice matters.
// BenchmarkSolveReference is the original schedule; BenchmarkSolveOptimized
// is the default CSR + delta-worklist engine; BenchmarkSolveSharded adds
// parallel flow propagation. gatorbench -solvejson records the same
// comparison (solve phase only) into BENCH_6.json.
func benchSolveEngine(b *testing.B, opts core.Options) {
	sources, layouts := corpus.ModularChainApp(250, 24)
	app, err := Load(sources, layouts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		iters = core.Analyze(app.prog, opts).Iterations
	}
	b.ReportMetric(float64(iters), "iters")
}

func BenchmarkSolveReference(b *testing.B) {
	benchSolveEngine(b, core.Options{ReferenceSolver: true})
}

func BenchmarkSolveOptimized(b *testing.B) {
	benchSolveEngine(b, core.Options{})
}

func BenchmarkSolveSharded(b *testing.B) {
	benchSolveEngine(b, core.Options{SolverShards: 4})
}

// BenchmarkInterpreter measures the exploration oracle itself.
func BenchmarkInterpreter(b *testing.B) {
	prog := builtApps["ConnectBot"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		interp.New(prog, interp.Config{Seed: int64(i)}).Run()
	}
}

// BenchmarkFrontend measures parsing + resolution + lowering alone.
func BenchmarkFrontend(b *testing.B) {
	app := corpus.Generate(mustSpec("Astrid"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Build(app.FreshFiles(), app.FreshLayouts()); err != nil {
			b.Fatal(err)
		}
	}
}

func mustSpec(name string) corpus.Spec {
	s, ok := corpus.SpecByName(name)
	if !ok {
		panic("no spec " + name)
	}
	return s
}

package gator

import (
	"encoding/json"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	app, err := LoadDir("testdata/notepad")
	if err != nil {
		t.Fatal(err)
	}
	res := app.Analyze(Options{})
	m := res.Model()

	if m.App != "notepad" {
		t.Errorf("app = %q", m.App)
	}
	if len(m.Views) != m.Stats["viewsInflated"]+m.Stats["viewsAllocated"] {
		t.Errorf("views = %d, stats say %d+%d", len(m.Views),
			m.Stats["viewsInflated"], m.Stats["viewsAllocated"])
	}
	if len(m.Activities) != 2 || len(m.Transit) == 0 || len(m.Menus) != 2 {
		t.Errorf("model = %d activities, %d transitions, %d menus",
			len(m.Activities), len(m.Transit), len(m.Menus))
	}

	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.App != m.App || len(back.Views) != len(m.Views) ||
		len(back.Tuples) != len(m.Tuples) || len(back.Hierarchy) != len(m.Hierarchy) {
		t.Error("round trip lost data")
	}

	// Deterministic serialization (modulo the wall-clock field).
	m2 := app.Analyze(Options{}).Model()
	m.Elapsed, m2.Elapsed = "", ""
	norm1, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	norm2, err := m2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(norm1) != string(norm2) {
		t.Error("model JSON is not deterministic")
	}
}

func TestModelHierarchyConsistent(t *testing.T) {
	res := figure1App(t).Analyze(Options{})
	m := res.Model()
	origins := map[string]bool{}
	for _, v := range m.Views {
		origins[v.Origin] = true
	}
	for _, e := range m.Hierarchy {
		if !origins[e.Parent] || !origins[e.Child] {
			t.Errorf("hierarchy edge references unknown view: %+v", e)
		}
	}
	for _, a := range m.Activities {
		for _, root := range a.Roots {
			if !origins[root] {
				t.Errorf("activity root %q not among views", root)
			}
		}
	}
}
